// Row-reordering preprocessing for run-length-friendly bitmap indexes.
//
// Word-aligned compression multiplies when rows with equal (or Gray-
// adjacent) values sit next to each other: sorting the relation before the
// build turns each bitmap's scattered bits into a handful of runs
// ("Sorting improves word-aligned bitmap indexes", arXiv 0901.3751;
// "Histogram-Aware Sorting for Enhanced Word-Aligned Compression",
// arXiv 0808.2083).  The index is built over the *permuted* rows, and the
// permutation travels with it so every query still surfaces original row
// ids.
//
// Permutation convention, used everywhere in this codebase:
//   perm[physical] = logical
// i.e. bitmap position p (the "physical" row) holds the record the caller
// knows as row perm[p].  An empty permutation means identity (unsorted).
// Rows past the permutation's length map to themselves — that is how the
// mutable index's append tail works: appended rows land physically at the
// end under an identity-extended permutation until a compaction re-sorts.
//
// Space discipline (the row-identity contract):
//   * bitmaps, foundsets fetched from them, and tombstone masks live in
//     PHYSICAL space;
//   * everything user-visible — query results, aggregate foundset inputs
//     paired with an unsorted index, row ids passed to Delete — lives in
//     LOGICAL space;
//   * RemapToLogical / RemapToPhysical cross between the two.

#ifndef BIX_CORE_ROW_ORDER_H_
#define BIX_CORE_ROW_ORDER_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "bitmap/bitvector.h"
#include "core/base_sequence.h"
#include "core/bitmap_source.h"
#include "core/status.h"

namespace bix {

enum class RowOrder {
  kNone,  // insertion order (identity permutation)
  kLex,   // lexicographic by value rank, NULLs last
  kGray,  // reflected mixed-radix Gray order over the component digits
};

std::string_view ToString(RowOrder order);
bool ParseRowOrder(std::string_view name, RowOrder* out);

/// Computes the sort permutation for one column of value ranks (kNullValue
/// allowed; NULLs sort last).  Returns perm with perm[physical] = logical;
/// empty for kNone.  The sort is stable, so equal keys keep insertion
/// order and the result is deterministic.
///
/// kLex orders by the rank itself.  kGray decomposes each rank into the
/// base sequence's digits (most-significant first) and orders by the
/// reflected mixed-radix Gray code: whenever the prefix parity is odd the
/// next digit's direction flips, so consecutive rows differ in few digits
/// and every component's bitmaps — not just the most significant one —
/// see long runs.
std::vector<uint32_t> ComputeRowOrder(std::span<const uint32_t> values,
                                      uint32_t cardinality,
                                      const BaseSequence& base,
                                      RowOrder order);

/// One attribute participating in a multi-column sort.
struct OrderColumn {
  std::span<const uint32_t> values;  // ranks in [0, cardinality) or kNullValue
  uint32_t cardinality = 0;
};

/// Histogram-aware column ordering (arXiv 0808.2083 heuristic): columns
/// with fewer distinct values first — their runs survive the longest under
/// a lexicographic sort — breaking ties toward the more skewed histogram
/// (larger top-1 frequency), then input position.  Returns column indices
/// in comparison order.
std::vector<size_t> HistogramColumnOrder(std::span<const OrderColumn> columns);

/// Multi-attribute sort permutation: compares rows column by column in
/// HistogramColumnOrder, each column's rank acting as one mixed-radix
/// digit (kGray applies the reflected-parity rule across columns).  All
/// columns must have equal length.
std::vector<uint32_t> ComputeMultiColumnRowOrder(
    std::span<const OrderColumn> columns, RowOrder order);

/// True when perm is empty or maps every position to itself.
bool IsIdentityPermutation(std::span<const uint32_t> perm);

/// inverse[logical] = physical, the left/right inverse of perm.
std::vector<uint32_t> InvertPermutation(std::span<const uint32_t> perm);

/// permuted[p] = values[perm[p]] — the column in physical (build) order.
std::vector<uint32_t> ApplyPermutation(std::span<const uint32_t> values,
                                       std::span<const uint32_t> perm);

/// Remaps a physical-space bitvector (a foundset fetched or evaluated over
/// the permuted bitmaps) into logical row ids: out[perm[p]] = in[p].
/// Positions at or past perm.size() map to themselves (the identity-
/// extended append tail).  perm empty returns the input unchanged.
Bitvector RemapToLogical(const Bitvector& physical,
                         std::span<const uint32_t> perm);

/// The inverse direction: out[p] = in[perm[p]].  Use to feed a logical
/// foundset to physical-space consumers (e.g. the bit-sliced aggregates
/// over a sorted index).
Bitvector RemapToPhysical(const Bitvector& logical,
                          std::span<const uint32_t> perm);

/// Reads the value column back out of an index's stored bitmaps, in the
/// source's own (physical) row order; rows off the non-null bitmap come
/// back as kNullValue.  This is compaction's re-sort reader: the mutable
/// index has no base relation to consult, but the bitmaps are a lossless
/// encoding of the rank column under both encodings.  Returns Corruption
/// when the bitmaps are not a consistent encoding (e.g. a non-null row
/// with no equality slice set).
Status DecodeIndexValues(const BitmapSource& source,
                         std::vector<uint32_t>* values);

}  // namespace bix

#endif  // BIX_CORE_ROW_ORDER_H_
