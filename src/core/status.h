// Minimal error-status type for fallible operations (file I/O, decoding).
//
// The library does not use exceptions; operations that can fail at runtime
// for environmental reasons return Status (or fill an out-parameter and
// return Status).  Programming errors use BIX_CHECK instead.

#ifndef BIX_CORE_STATUS_H_
#define BIX_CORE_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace bix {

class Status {
 public:
  enum class Code {
    kOk = 0,
    kIoError,
    kCorruption,
    kInvalidArgument,
    kNotFound,
    kDeadlineExceeded,    // a query's deadline passed before it finished
    kResourceExhausted,   // admission refused: a bounded queue is full
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  std::string_view message() const { return message_; }

  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

}  // namespace bix

#endif  // BIX_CORE_STATUS_H_
