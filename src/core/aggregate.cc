#include "core/aggregate.h"

#include "core/check.h"

namespace bix {

namespace {

// Bitmap of records whose component-`c` digit equals `d`, derived from the
// stored bitmaps.  May include NULL rows (equality base-2 digit 0 and
// range top digit come from complements); callers AND with a
// non-null-masked foundset.
Bitvector DigitBitmap(const BitmapIndex& index, int c, uint32_t d) {
  const IndexComponent& comp = index.component(c);
  uint32_t b = comp.base();
  if (comp.encoding() == Encoding::kEquality) {
    if (b == 2) {
      Bitvector e1 = comp.stored(0);
      if (d == 0) e1.NotInPlace();
      return e1;
    }
    return comp.stored(d);
  }
  // Range encoding: digit == d  <=>  B^d AND NOT B^{d-1}.
  if (d == b - 1) {
    Bitvector top = comp.stored(b - 2);
    top.NotInPlace();
    return top;
  }
  Bitvector eq = comp.stored(d);
  if (d > 0) eq.AndNotWith(comp.stored(d - 1));
  return eq;
}

}  // namespace

int64_t CountAggregate(const BitmapIndex& index, const Bitvector& foundset) {
  BIX_CHECK(foundset.size() == index.num_records());
  return static_cast<int64_t>(
      Bitvector::CountAnd(foundset, index.non_null()));
}

int64_t SumAggregate(const BitmapIndex& index, const Bitvector& foundset) {
  BIX_CHECK(foundset.size() == index.num_records());
  Bitvector masked = foundset;
  masked.AndWith(index.non_null());
  const int64_t total = static_cast<int64_t>(masked.Count());
  if (total == 0) return 0;

  int64_t sum = 0;
  int64_t weight = 1;  // W_i = product of lower bases
  for (int c = 0; c < index.base().num_components(); ++c) {
    const IndexComponent& comp = index.component(c);
    uint32_t b = comp.base();
    int64_t digit_sum = 0;
    if (comp.encoding() == Encoding::kRange) {
      // sum of digits = sum over d < b-1 of #(digit > d)
      //               = sum over d of (total - popcount(B^d AND F)).
      for (uint32_t d = 0; d + 1 < b; ++d) {
        digit_sum += total - static_cast<int64_t>(
                                 Bitvector::CountAnd(comp.stored(d), masked));
      }
    } else if (b == 2) {
      digit_sum =
          static_cast<int64_t>(Bitvector::CountAnd(comp.stored(0), masked));
    } else {
      for (uint32_t d = 1; d < b; ++d) {
        digit_sum += static_cast<int64_t>(d) *
                     static_cast<int64_t>(
                         Bitvector::CountAnd(comp.stored(d), masked));
      }
    }
    sum += weight * digit_sum;
    weight *= b;
  }
  return sum;
}

std::optional<double> AvgAggregate(const BitmapIndex& index,
                                   const Bitvector& foundset) {
  int64_t count = CountAggregate(index, foundset);
  if (count == 0) return std::nullopt;
  return static_cast<double>(SumAggregate(index, foundset)) /
         static_cast<double>(count);
}

namespace {

std::optional<uint32_t> Extreme(const BitmapIndex& index,
                                const Bitvector& foundset, bool minimum) {
  Bitvector remaining = foundset;
  remaining.AndWith(index.non_null());
  if (remaining.None()) return std::nullopt;

  uint64_t value = 0;
  // Walk from the most significant component down, fixing one digit per
  // level to the smallest (largest) digit with survivors.
  for (int c = index.base().num_components() - 1; c >= 0; --c) {
    uint32_t b = index.component(c).base();
    bool fixed = false;
    for (uint32_t step = 0; step < b; ++step) {
      uint32_t d = minimum ? step : b - 1 - step;
      Bitvector candidate = DigitBitmap(index, c, d);
      candidate.AndWith(remaining);
      if (candidate.Any()) {
        value = value * b + d;
        remaining = std::move(candidate);
        fixed = true;
        break;
      }
    }
    BIX_CHECK(fixed);
  }
  return static_cast<uint32_t>(value);
}

}  // namespace

std::optional<uint32_t> MinAggregate(const BitmapIndex& index,
                                     const Bitvector& foundset) {
  return Extreme(index, foundset, /*minimum=*/true);
}

std::optional<uint32_t> MaxAggregate(const BitmapIndex& index,
                                     const Bitvector& foundset) {
  return Extreme(index, foundset, /*minimum=*/false);
}

std::vector<int64_t> GroupedCounts(const BitmapIndex& index,
                                   const Bitvector& foundset) {
  BIX_CHECK(foundset.size() == index.num_records());
  std::vector<int64_t> counts(index.cardinality(), 0);
  Bitvector masked = foundset;
  masked.AndWith(index.non_null());
  if (masked.None()) return counts;

  // Depth-first refinement from the most significant component; `prefix`
  // is the value of the digits fixed so far.
  auto recurse = [&](auto&& self, int c, uint64_t prefix,
                     const Bitvector& remaining) -> void {
    if (c < 0) {
      if (prefix < counts.size()) {
        counts[static_cast<size_t>(prefix)] +=
            static_cast<int64_t>(remaining.Count());
      }
      return;
    }
    uint32_t b = index.component(c).base();
    for (uint32_t d = 0; d < b; ++d) {
      Bitvector branch = DigitBitmap(index, c, d);
      branch.AndWith(remaining);
      if (branch.None()) continue;
      self(self, c - 1, prefix * b + d, branch);
    }
  };
  recurse(recurse, index.base().num_components() - 1, 0, masked);
  return counts;
}

}  // namespace bix
