#include "core/predicate.h"

namespace bix {

std::string_view ToString(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
  }
  return "?";
}

std::string_view ToString(Encoding encoding) {
  switch (encoding) {
    case Encoding::kEquality: return "equality";
    case Encoding::kRange: return "range";
  }
  return "?";
}

std::string_view ToString(EvalAlgorithm algorithm) {
  switch (algorithm) {
    case EvalAlgorithm::kAuto: return "Auto";
    case EvalAlgorithm::kRangeEval: return "RangeEval";
    case EvalAlgorithm::kRangeEvalOpt: return "RangeEval-Opt";
    case EvalAlgorithm::kEqualityEval: return "EqualityEval";
  }
  return "?";
}

}  // namespace bix
