#include "core/bitmap_index.h"

#include <utility>

#include "core/check.h"
#include "core/eval.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace bix {

BitmapIndex BitmapIndex::Build(std::span<const uint32_t> values,
                               uint32_t cardinality, const BaseSequence& base,
                               Encoding encoding) {
  BIX_CHECK(cardinality >= 1);
  BIX_CHECK_MSG(base.IsWellDefinedFor(cardinality),
                "base sequence capacity must cover the attribute cardinality");
  size_t n = values.size();

  Bitvector non_null(n);
  for (size_t r = 0; r < n; ++r) {
    if (values[r] != kNullValue) {
      BIX_CHECK_MSG(values[r] < cardinality, "value rank out of range");
      non_null.Set(r);
    }
  }

  int num_components = base.num_components();
  std::vector<IndexComponent> components;
  components.reserve(static_cast<size_t>(num_components));
  std::vector<uint32_t> digits(n, 0);
  // Peeling one digit at a time keeps the build a single pass per component.
  std::vector<uint64_t> remaining(n, 0);
  for (size_t r = 0; r < n; ++r) {
    remaining[r] = values[r] == kNullValue ? 0 : values[r];
  }
  for (int i = 0; i < num_components; ++i) {
    uint32_t b = base.base(i);
    for (size_t r = 0; r < n; ++r) {
      digits[r] = static_cast<uint32_t>(remaining[r] % b);
      remaining[r] /= b;
    }
    components.push_back(IndexComponent::Build(encoding, b, digits, non_null));
  }
  return BitmapIndex(cardinality, base, encoding, std::move(components),
                     std::move(non_null));
}

Bitvector BitmapIndex::Fetch(int component, uint32_t slot,
                             EvalStats* stats) const {
  return *FetchView(component, slot, stats);
}

const Bitvector* BitmapIndex::FetchView(int component, uint32_t slot,
                                        EvalStats* stats) const {
  const IndexComponent& comp = components_[static_cast<size_t>(component)];
  BIX_CHECK(slot < static_cast<uint32_t>(comp.num_stored_bitmaps()));
  if (stats != nullptr) {
    ++stats->bitmap_scans;
    obs::ProfCount(obs::ProfCounter::kBitmapScans);
  }
  if (obs::Tracer::enabled()) {
    obs::TraceSpan span("fetch", "memory");
    span.set_component(component);
    span.set_slot(slot);
    span.set_bytes(static_cast<int64_t>((non_null_.size() + 7) / 8));
  }
  return &comp.stored(slot);
}

Bitvector BitmapIndex::Evaluate(CompareOp op, int64_t v,
                                EvalStats* stats) const {
  return Evaluate(EvalAlgorithm::kAuto, op, v, stats);
}

Bitvector BitmapIndex::Evaluate(EvalAlgorithm algorithm, CompareOp op,
                                int64_t v, EvalStats* stats) const {
  return EvaluatePredicate(*this, algorithm, op, v, stats);
}

void BitmapIndex::Append(uint32_t value) {
  bool is_null = value == kNullValue;
  BIX_CHECK_MSG(is_null || value < cardinality_,
                "appended value rank out of range");
  non_null_.PushBack(!is_null);
  uint64_t remaining = is_null ? 0 : value;
  for (IndexComponent& comp : components_) {
    uint32_t digit = static_cast<uint32_t>(remaining % comp.base());
    remaining /= comp.base();
    comp.AppendDigit(digit, is_null);
  }
}

void BitmapIndex::Reserve(size_t num_records) {
  non_null_.Reserve(num_records);
  for (IndexComponent& comp : components_) comp.Reserve(num_records);
}

int64_t BitmapIndex::TotalStoredBitmaps() const {
  int64_t total = 0;
  for (const IndexComponent& c : components_) total += c.num_stored_bitmaps();
  return total;
}

int64_t BitmapIndex::SizeInBytes() const {
  int64_t total = 0;
  for (const IndexComponent& c : components_) total += c.SizeInBytes();
  return total;
}

}  // namespace bix
