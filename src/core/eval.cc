#include "core/eval.h"

#include <chrono>
#include <utility>
#include <vector>

#include "core/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bix {

namespace {

// Counts logical bitmap operations into an optional EvalStats, and emits an
// instant trace event per operation when tracing is on (the disabled path is
// one relaxed atomic load per operation).
struct OpCounter {
  EvalStats* stats;
  void And() const {
    if (stats != nullptr) ++stats->and_ops;
    if (obs::Tracer::enabled()) obs::RecordInstant("op", "AND");
  }
  void Or() const {
    if (stats != nullptr) ++stats->or_ops;
    if (obs::Tracer::enabled()) obs::RecordInstant("op", "OR");
  }
  void Xor() const {
    if (stats != nullptr) ++stats->xor_ops;
    if (obs::Tracer::enabled()) obs::RecordInstant("op", "XOR");
  }
  void Not() const {
    if (stats != nullptr) ++stats->not_ops;
    if (obs::Tracer::enabled()) obs::RecordInstant("op", "NOT");
  }
};

// Folds one evaluation's stats delta and latency into the process-wide
// metrics registry (a handful of relaxed atomic adds per query).
void RecordQueryMetrics(const EvalStats& delta, int64_t latency_ns) {
  auto& reg = obs::MetricsRegistry::Global();
  static obs::Counter& queries = reg.GetCounter("eval.queries");
  static obs::Counter& scans = reg.GetCounter("eval.bitmap_scans");
  static obs::Counter& and_ops = reg.GetCounter("eval.and_ops");
  static obs::Counter& or_ops = reg.GetCounter("eval.or_ops");
  static obs::Counter& xor_ops = reg.GetCounter("eval.xor_ops");
  static obs::Counter& not_ops = reg.GetCounter("eval.not_ops");
  static obs::Counter& buffer_hits = reg.GetCounter("eval.buffer_hits");
  static obs::Counter& bytes_read = reg.GetCounter("eval.bytes_read");
  static obs::Histogram& latency = reg.GetHistogram("eval.latency_ns");
  static obs::Histogram& scans_per_query =
      reg.GetHistogram("eval.scans_per_query");
  queries.Increment();
  scans.Increment(delta.bitmap_scans);
  and_ops.Increment(delta.and_ops);
  or_ops.Increment(delta.or_ops);
  xor_ops.Increment(delta.xor_ops);
  not_ops.Increment(delta.not_ops);
  buffer_hits.Increment(delta.buffer_hits);
  bytes_read.Increment(delta.bytes_read);
  latency.Observe(latency_ns);
  scans_per_query.Observe(delta.bitmap_scans);
}

Bitvector TrivialResult(const BitmapSource& src, bool all) {
  return all ? src.non_null() : Bitvector::Zeros(src.num_records());
}

// Result for a predicate constant outside [0, C): every comparison is
// decided without touching the index (0 scans, 0 operations).
Bitvector OutOfDomainResult(const BitmapSource& src, CompareOp op, int64_t v) {
  bool all;
  if (v < 0) {
    all = (op == CompareOp::kGt || op == CompareOp::kGe ||
           op == CompareOp::kNe);
  } else {  // v >= C
    all = (op == CompareOp::kLt || op == CompareOp::kLe ||
           op == CompareOp::kNe);
  }
  return TrivialResult(src, all);
}

bool InDomain(const BitmapSource& src, int64_t v) {
  return v >= 0 && v < static_cast<int64_t>(src.cardinality());
}

// Fetches an equality-encoded digit bitmap E^d, deriving E^0 = NOT E^1 for
// base-2 components (which store only E^1).
Bitvector FetchEq(const BitmapSource& src, int component, uint32_t d,
                  const OpCounter& ops, EvalStats* stats) {
  uint32_t b = src.base().base(component);
  if (b == 2) {
    Bitvector e1 = src.Fetch(component, 0, stats);
    if (d == 0) {
      e1.NotInPlace();
      ops.Not();
    }
    return e1;
  }
  return src.Fetch(component, d, stats);
}

}  // namespace

Bitvector RangeEvalOpt(const BitmapSource& src, CompareOp op, int64_t v,
                       EvalStats* stats) {
  BIX_CHECK_MSG(src.encoding() == Encoding::kRange,
                "RangeEval-Opt requires a range-encoded index");
  if (!InDomain(src, v)) return OutOfDomainResult(src, op, v);
  const BaseSequence& base = src.base();
  const int n = base.num_components();
  const size_t num_records = src.num_records();
  OpCounter ops{stats};

  Bitvector b;
  bool negate;
  if (IsRangeOp(op)) {
    // Rewrite in terms of <=:  A < v == A <= v-1;  A > v == not(A <= v);
    // A >= v == not(A <= v-1).
    int64_t w = v;
    if (op == CompareOp::kLt || op == CompareOp::kGe) --w;
    negate = (op == CompareOp::kGt || op == CompareOp::kGe);
    if (w < 0) {
      // A <= -1 is empty: `<` yields nothing, `>=` yields all non-null rows.
      return TrivialResult(src, negate);
    }
    std::vector<uint32_t> digits = base.Decompose(static_cast<uint64_t>(w));
    b = Bitvector::Ones(num_records);
    // Component 1 (least significant): B = B^{w_1} unless w_1 = b_1 - 1
    // (implicit all-ones).  Assignment, not an operation.
    if (digits[0] < base.base(0) - 1) b = src.Fetch(0, digits[0], stats);
    for (int i = 1; i < n; ++i) {
      uint32_t bi = base.base(i);
      uint32_t wi = digits[static_cast<size_t>(i)];
      if (wi != bi - 1) {
        b.AndWith(src.Fetch(i, wi, stats));
        ops.And();
      }
      if (wi != 0) {
        b.OrWith(src.Fetch(i, wi - 1, stats));
        ops.Or();
      }
    }
  } else {
    // Equality path: per component AND one digit-equality term.
    negate = (op == CompareOp::kNe);
    std::vector<uint32_t> digits = base.Decompose(static_cast<uint64_t>(v));
    b = Bitvector::Ones(num_records);
    for (int i = 0; i < n; ++i) {
      uint32_t bi = base.base(i);
      uint32_t vi = digits[static_cast<size_t>(i)];
      if (vi == 0) {
        b.AndWith(src.Fetch(i, 0, stats));
        ops.And();
      } else if (vi == bi - 1) {
        Bitvector t = src.Fetch(i, bi - 2, stats);
        t.NotInPlace();
        ops.Not();
        b.AndWith(t);
        ops.And();
      } else {
        Bitvector hi = src.Fetch(i, vi, stats);
        hi.XorWith(src.Fetch(i, vi - 1, stats));
        ops.Xor();
        b.AndWith(hi);
        ops.And();
      }
    }
  }

  if (negate) {
    b.NotInPlace();
    ops.Not();
  }
  b.AndWith(src.non_null());
  ops.And();
  return b;
}

Bitvector RangeEval(const BitmapSource& src, CompareOp op, int64_t v,
                    EvalStats* stats) {
  BIX_CHECK_MSG(src.encoding() == Encoding::kRange,
                "RangeEval requires a range-encoded index");
  if (!InDomain(src, v)) return OutOfDomainResult(src, op, v);
  const BaseSequence& base = src.base();
  const int n = base.num_components();
  const size_t num_records = src.num_records();
  OpCounter ops{stats};

  const bool need_lt = (op == CompareOp::kLt || op == CompareOp::kLe);
  const bool need_gt = (op == CompareOp::kGt || op == CompareOp::kGe);

  std::vector<uint32_t> digits = base.Decompose(static_cast<uint64_t>(v));
  Bitvector b_eq = src.non_null();  // line 2: B_EQ = B_nn (not a scan)
  Bitvector b_lt = need_lt ? Bitvector::Zeros(num_records) : Bitvector();
  Bitvector b_gt = need_gt ? Bitvector::Zeros(num_records) : Bitvector();

  for (int i = n - 1; i >= 0; --i) {
    uint32_t bi = base.base(i);
    uint32_t vi = digits[static_cast<size_t>(i)];
    if (vi > 0) {
      // lo = B^{v_i - 1}, shared by the LT accumulation and the equality
      // term (XOR when v_i < b_i - 1, complement otherwise); fetched once.
      Bitvector lo = src.Fetch(i, vi - 1, stats);
      if (need_lt) {
        Bitvector t = lo;
        t.AndWith(b_eq);
        ops.And();
        b_lt.OrWith(t);
        ops.Or();
      }
      if (vi < bi - 1) {
        Bitvector hi = src.Fetch(i, vi, stats);
        if (need_gt) {
          Bitvector t = hi;
          t.NotInPlace();
          ops.Not();
          t.AndWith(b_eq);
          ops.And();
          b_gt.OrWith(t);
          ops.Or();
        }
        hi.XorWith(lo);
        ops.Xor();
        b_eq.AndWith(hi);
        ops.And();
      } else {
        // v_i == b_i - 1: equality term is NOT B^{b_i - 2} (== lo).
        lo.NotInPlace();
        ops.Not();
        b_eq.AndWith(lo);
        ops.And();
      }
    } else {  // v_i == 0
      Bitvector z = src.Fetch(i, 0, stats);
      if (need_gt) {
        Bitvector t = z;
        t.NotInPlace();
        ops.Not();
        t.AndWith(b_eq);
        ops.And();
        b_gt.OrWith(t);
        ops.Or();
      }
      b_eq.AndWith(z);
      ops.And();
    }
  }

  switch (op) {
    case CompareOp::kLt:
      return b_lt;
    case CompareOp::kLe:
      b_lt.OrWith(b_eq);
      ops.Or();
      return b_lt;
    case CompareOp::kGt:
      return b_gt;
    case CompareOp::kGe:
      b_gt.OrWith(b_eq);
      ops.Or();
      return b_gt;
    case CompareOp::kEq:
      return b_eq;
    case CompareOp::kNe:
      b_eq.NotInPlace();
      ops.Not();
      b_eq.AndWith(src.non_null());
      ops.And();
      return b_eq;
  }
  BIX_CHECK(false);
  return Bitvector();
}

Bitvector EqualityEval(const BitmapSource& src, CompareOp op, int64_t v,
                       EvalStats* stats) {
  BIX_CHECK_MSG(src.encoding() == Encoding::kEquality,
                "EqualityEval requires an equality-encoded index");
  if (!InDomain(src, v)) return OutOfDomainResult(src, op, v);
  const BaseSequence& base = src.base();
  const int n = base.num_components();
  const size_t num_records = src.num_records();
  OpCounter ops{stats};

  Bitvector b;
  bool negate;
  if (!IsRangeOp(op)) {
    // Equality path: AND the per-digit equality bitmaps (1 scan/component).
    negate = (op == CompareOp::kNe);
    std::vector<uint32_t> digits = base.Decompose(static_cast<uint64_t>(v));
    b = FetchEq(src, 0, digits[0], ops, stats);
    for (int i = 1; i < n; ++i) {
      b.AndWith(FetchEq(src, i, digits[static_cast<size_t>(i)], ops, stats));
      ops.And();
    }
  } else {
    // Range path via A <= w, digit-recursive: B := (digit_1 <= w_1);
    // then B := LT_i OR (EQ_i AND B) for i = 2..n.  For each per-digit
    // "less-than" the cheaper of the direct OR and the complemented OR of
    // the opposite side is used (the complement side reuses the already
    // fetched EQ bitmap), so a component costs 1 + min(d, b-1-d) scans.
    int64_t w = v;
    if (op == CompareOp::kLt || op == CompareOp::kGe) --w;
    negate = (op == CompareOp::kGt || op == CompareOp::kGe);
    if (w < 0) return TrivialResult(src, negate);
    std::vector<uint32_t> digits = base.Decompose(static_cast<uint64_t>(w));

    // Component 1: B = (digit <= w_1).
    uint32_t b0 = base.base(0);
    uint32_t d0 = digits[0];
    if (d0 == b0 - 1) {
      b = Bitvector::Ones(num_records);
    } else if (b0 == 2) {
      // d0 == 0: digit <= 0 is NOT E^1.
      b = src.Fetch(0, 0, stats);
      b.NotInPlace();
      ops.Not();
    } else if (d0 + 1 <= b0 - 1 - d0) {
      b = src.Fetch(0, 0, stats);
      for (uint32_t k = 1; k <= d0; ++k) {
        b.OrWith(src.Fetch(0, k, stats));
        ops.Or();
      }
    } else {
      b = src.Fetch(0, d0 + 1, stats);
      for (uint32_t k = d0 + 2; k < b0; ++k) {
        b.OrWith(src.Fetch(0, k, stats));
        ops.Or();
      }
      b.NotInPlace();
      ops.Not();
    }

    for (int i = 1; i < n; ++i) {
      uint32_t bi = base.base(i);
      uint32_t d = digits[static_cast<size_t>(i)];
      if (bi == 2) {
        Bitvector e1 = src.Fetch(i, 0, stats);
        if (d == 0) {
          // LT empty; EQ = NOT E^1.
          e1.NotInPlace();
          ops.Not();
          b.AndWith(e1);
          ops.And();
        } else {
          // B = (NOT E^1) OR (E^1 AND B).
          b.AndWith(e1);
          ops.And();
          e1.NotInPlace();
          ops.Not();
          b.OrWith(e1);
          ops.Or();
        }
        continue;
      }
      Bitvector eq = src.Fetch(i, d, stats);
      if (d == 0) {
        b.AndWith(eq);
        ops.And();
        continue;
      }
      Bitvector lt;
      if (d <= bi - 1 - d) {
        lt = src.Fetch(i, 0, stats);
        for (uint32_t k = 1; k < d; ++k) {
          lt.OrWith(src.Fetch(i, k, stats));
          ops.Or();
        }
      } else {
        lt = eq;  // start GE accumulation from the shared EQ bitmap
        for (uint32_t k = d + 1; k < bi; ++k) {
          lt.OrWith(src.Fetch(i, k, stats));
          ops.Or();
        }
        lt.NotInPlace();
        ops.Not();
      }
      b.AndWith(eq);
      ops.And();
      b.OrWith(lt);
      ops.Or();
    }
  }

  if (negate) {
    b.NotInPlace();
    ops.Not();
  }
  b.AndWith(src.non_null());
  ops.And();
  return b;
}

Bitvector EvaluatePredicate(const BitmapSource& source,
                            EvalAlgorithm algorithm, CompareOp op, int64_t v,
                            EvalStats* stats) {
  if (algorithm == EvalAlgorithm::kAuto) {
    algorithm = source.encoding() == Encoding::kRange
                    ? EvalAlgorithm::kRangeEvalOpt
                    : EvalAlgorithm::kEqualityEval;
  }
  // Stats are always collected (into a local when the caller passed none) so
  // the registry sees every evaluation; `before` isolates this query's delta
  // when the caller accumulates across queries.
  EvalStats local;
  EvalStats* s = stats != nullptr ? stats : &local;
  const EvalStats before = *s;

  obs::TraceSpan span("eval", ToString(algorithm).data());
  span.set_value(v);
  if (span.active()) span.set_detail(std::string(ToString(op)));

  const auto start = std::chrono::steady_clock::now();
  Bitvector result;
  switch (algorithm) {
    case EvalAlgorithm::kRangeEval:
      result = RangeEval(source, op, v, s);
      break;
    case EvalAlgorithm::kRangeEvalOpt:
      result = RangeEvalOpt(source, op, v, s);
      break;
    case EvalAlgorithm::kEqualityEval:
      result = EqualityEval(source, op, v, s);
      break;
    case EvalAlgorithm::kAuto:
      BIX_CHECK(false);
  }
  const int64_t latency_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count();

  EvalStats delta = *s;
  delta.bitmap_scans -= before.bitmap_scans;
  delta.and_ops -= before.and_ops;
  delta.or_ops -= before.or_ops;
  delta.xor_ops -= before.xor_ops;
  delta.not_ops -= before.not_ops;
  delta.bytes_read -= before.bytes_read;
  delta.buffer_hits -= before.buffer_hits;
  RecordQueryMetrics(delta, latency_ns);
  return result;
}

}  // namespace bix
