#include "core/eval.h"

#include <chrono>
#include <utility>
#include <vector>

#include "bitmap/bitvector_kernels.h"
#include "core/check.h"
#include "core/eval_algorithms.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace bix {

namespace {

// The sequential backend for the shared algorithm templates
// (core/eval_algorithms.h): every operation runs immediately on a
// full-length dense Bitvector.  OrMany fuses k-ary ORs into one blocked
// pass (Bitvector::OrOfMany) instead of folding pairwise.
class DenseEngine {
 public:
  using Vec = Bitvector;

  DenseEngine(const BitmapSource& src, EvalStats* stats)
      : src_(src), stats_(stats) {}

  const BitmapSource& source() const { return src_; }
  EvalStats* stats() const { return stats_; }

  Bitvector Fetch(int component, uint32_t slot) {
    return src_.Fetch(component, slot, stats_);
  }
  Bitvector Zeros() const { return Bitvector::Zeros(src_.num_records()); }
  Bitvector Ones() const { return Bitvector::Ones(src_.num_records()); }
  Bitvector NonNull() const { return src_.non_null(); }

  Bitvector OrMany(std::vector<Bitvector> operands) {
    BIX_CHECK(!operands.empty());
    if (operands.size() == 1) return std::move(operands[0]);
    return OrOfMany(operands);
  }

 private:
  const BitmapSource& src_;
  EvalStats* stats_;
};

}  // namespace

namespace eval_internal {

void RecordQueryMetrics(const EvalStats& delta, int64_t latency_ns) {
  auto& reg = obs::MetricsRegistry::Global();
  static obs::Counter& queries = reg.GetCounter("eval.queries");
  static obs::Counter& scans = reg.GetCounter("eval.bitmap_scans");
  static obs::Counter& and_ops = reg.GetCounter("eval.and_ops");
  static obs::Counter& or_ops = reg.GetCounter("eval.or_ops");
  static obs::Counter& xor_ops = reg.GetCounter("eval.xor_ops");
  static obs::Counter& not_ops = reg.GetCounter("eval.not_ops");
  static obs::Counter& buffer_hits = reg.GetCounter("eval.buffer_hits");
  static obs::Counter& bytes_read = reg.GetCounter("eval.bytes_read");
  static obs::Histogram& latency = reg.GetHistogram("eval.latency_ns");
  static obs::Histogram& scans_per_query =
      reg.GetHistogram("eval.scans_per_query");
  queries.Increment();
  scans.Increment(delta.bitmap_scans);
  and_ops.Increment(delta.and_ops);
  or_ops.Increment(delta.or_ops);
  xor_ops.Increment(delta.xor_ops);
  not_ops.Increment(delta.not_ops);
  buffer_hits.Increment(delta.buffer_hits);
  bytes_read.Increment(delta.bytes_read);
  latency.Observe(latency_ns);
  scans_per_query.Observe(delta.bitmap_scans);
}

}  // namespace eval_internal

const char* ToString(EngineKind kind) {
  switch (kind) {
    case EngineKind::kPlain:
      return "plain";
    case EngineKind::kWah:
      return "wah";
    case EngineKind::kAuto:
      return "auto";
  }
  return "?";
}

Bitvector RangeEvalOpt(const BitmapSource& src, CompareOp op, int64_t v,
                       EvalStats* stats) {
  DenseEngine eng(src, stats);
  return eval_detail::RangeEvalOptImpl(eng, op, v);
}

Bitvector RangeEval(const BitmapSource& src, CompareOp op, int64_t v,
                    EvalStats* stats) {
  DenseEngine eng(src, stats);
  return eval_detail::RangeEvalImpl(eng, op, v);
}

Bitvector EqualityEval(const BitmapSource& src, CompareOp op, int64_t v,
                       EvalStats* stats) {
  DenseEngine eng(src, stats);
  return eval_detail::EqualityEvalImpl(eng, op, v);
}

Bitvector EvaluatePredicate(const BitmapSource& source,
                            EvalAlgorithm algorithm, CompareOp op, int64_t v,
                            EvalStats* stats) {
  if (algorithm == EvalAlgorithm::kAuto) {
    algorithm = source.encoding() == Encoding::kRange
                    ? EvalAlgorithm::kRangeEvalOpt
                    : EvalAlgorithm::kEqualityEval;
  }
  // Stats are always collected (into a local when the caller passed none) so
  // the registry sees every evaluation; `before` isolates this query's delta
  // when the caller accumulates across queries.
  EvalStats local;
  EvalStats* s = stats != nullptr ? stats : &local;
  const EvalStats before = *s;

  obs::TraceSpan span("eval", ToString(algorithm).data());
  span.set_value(v);
  if (span.active()) span.set_detail(std::string(ToString(op)));
  obs::ProfSpan prof("eval", ToString(algorithm));

  const auto start = std::chrono::steady_clock::now();
  Bitvector result;
  switch (algorithm) {
    case EvalAlgorithm::kRangeEval:
      result = RangeEval(source, op, v, s);
      break;
    case EvalAlgorithm::kRangeEvalOpt:
      result = RangeEvalOpt(source, op, v, s);
      break;
    case EvalAlgorithm::kEqualityEval:
      result = EqualityEval(source, op, v, s);
      break;
    case EvalAlgorithm::kAuto:
      BIX_CHECK(false);
  }
  const int64_t latency_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count();

  eval_internal::RecordQueryMetrics(EvalStats::Delta(*s, before), latency_ns);
  return result;
}

}  // namespace bix
