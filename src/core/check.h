// Lightweight runtime invariant checks for the bix library.
//
// The library is exception-free (Google style); violated preconditions are
// programming errors and abort the process with a diagnostic.  BIX_CHECK is
// always on; BIX_DCHECK compiles away in NDEBUG builds and guards
// per-bit/per-word hot paths.

#ifndef BIX_CORE_CHECK_H_
#define BIX_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace bix::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "BIX_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? ": " : "", msg);
  std::abort();
}

}  // namespace bix::internal

#define BIX_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::bix::internal::CheckFailed(#cond, __FILE__, __LINE__, "");   \
    }                                                                \
  } while (0)

#define BIX_CHECK_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::bix::internal::CheckFailed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                 \
  } while (0)

#ifdef NDEBUG
#define BIX_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define BIX_DCHECK(cond) BIX_CHECK(cond)
#endif

#endif  // BIX_CORE_CHECK_H_
