#include "core/cost_model.h"

#include <algorithm>
#include <vector>

#include "core/bitmap_source.h"
#include "core/check.h"

namespace bix {

namespace {

EvalAlgorithm ResolveAlgorithm(Encoding encoding, EvalAlgorithm algorithm) {
  if (algorithm == EvalAlgorithm::kAuto) {
    return encoding == Encoding::kRange ? EvalAlgorithm::kRangeEvalOpt
                                        : EvalAlgorithm::kEqualityEval;
  }
  if (encoding == Encoding::kRange) {
    BIX_CHECK(algorithm == EvalAlgorithm::kRangeEval ||
              algorithm == EvalAlgorithm::kRangeEvalOpt);
  } else {
    BIX_CHECK(algorithm == EvalAlgorithm::kEqualityEval);
  }
  return algorithm;
}

// --- Per-digit scan costs, mirroring core/eval.cc exactly. ---------------

// RangeEval fetches B^{v_i-1} and/or B^{v_i}: 1 scan at the digit extremes,
// 2 in the middle; identical for all six operators.
int64_t RangeEvalDigitScans(uint32_t b, uint32_t d) {
  return (d == 0 || d == b - 1) ? 1 : 2;
}

// RangeEval-Opt, equality path (= and !=).
int64_t RangeOptEqDigitScans(uint32_t b, uint32_t d) {
  return (d == 0 || d == b - 1) ? 1 : 2;
}

// RangeEval-Opt, range path (digits of the normalized bound w).
int64_t RangeOptRangeDigitScans(uint32_t b, uint32_t d, bool is_component1) {
  if (is_component1) return d == b - 1 ? 0 : 1;
  return (d != b - 1 ? 1 : 0) + (d != 0 ? 1 : 0);
}

// EqualityEval, range path.
int64_t EqualityRangeDigitScans(uint32_t b, uint32_t d, bool is_component1) {
  if (is_component1) {
    if (d == b - 1) return 0;
    if (b == 2) return 1;
    return std::min(d + 1, b - 1 - d);
  }
  if (b == 2 || d == 0) return 1;
  return 1 + std::min(d, b - 1 - d);
}

// Number of x in [0, K) whose i-th digit equals d, for the given base
// sequence (digits least-significant first).
int64_t DigitCount(const BaseSequence& base, int i, uint32_t d, int64_t k) {
  int64_t period = 1;
  for (int j = 0; j < i; ++j) period *= base.base(j);
  int64_t cycle = period * base.base(i);
  int64_t full = (k / cycle) * period;
  int64_t rem = k % cycle - static_cast<int64_t>(d) * period;
  return full + std::clamp<int64_t>(rem, 0, period);
}

// Sum over the two operator groups of the total scans across all C queries.
struct QueryGroupTotals {
  // Operators evaluated on digits of v itself over [0, C).
  int64_t direct = 0;
  // Range bound w = v over [0, C)  (operators <= and >).
  int64_t bound_full = 0;
  // Range bound w = v - 1 over [0, C-1)  (operators < and >=; w = -1
  // contributes zero scans).
  int64_t bound_minus1 = 0;
};

}  // namespace

int64_t SpaceInBitmaps(const BaseSequence& base, Encoding encoding) {
  int64_t total = 0;
  for (int i = 0; i < base.num_components(); ++i) {
    total += NumStoredBitmaps(encoding, base.base(i));
  }
  return total;
}

double ExactTime(const BaseSequence& base, uint32_t cardinality,
                 Encoding encoding, EvalAlgorithm algorithm) {
  BIX_CHECK(cardinality >= 1);
  BIX_CHECK(base.IsWellDefinedFor(cardinality));
  algorithm = ResolveAlgorithm(encoding, algorithm);
  const int n = base.num_components();
  const int64_t c = cardinality;

  QueryGroupTotals totals;
  for (int i = 0; i < n; ++i) {
    uint32_t b = base.base(i);
    for (uint32_t d = 0; d < b; ++d) {
      int64_t count_full = DigitCount(base, i, d, c);
      if (count_full == 0) continue;
      int64_t count_minus1 = DigitCount(base, i, d, c - 1);
      switch (algorithm) {
        case EvalAlgorithm::kRangeEval:
          totals.direct += count_full * RangeEvalDigitScans(b, d);
          break;
        case EvalAlgorithm::kRangeEvalOpt:
          totals.direct += count_full * RangeOptEqDigitScans(b, d);
          totals.bound_full +=
              count_full * RangeOptRangeDigitScans(b, d, i == 0);
          totals.bound_minus1 +=
              count_minus1 * RangeOptRangeDigitScans(b, d, i == 0);
          break;
        case EvalAlgorithm::kEqualityEval:
          totals.direct += count_full;  // 1 scan per component for = / !=
          totals.bound_full +=
              count_full * EqualityRangeDigitScans(b, d, i == 0);
          totals.bound_minus1 +=
              count_minus1 * EqualityRangeDigitScans(b, d, i == 0);
          break;
        case EvalAlgorithm::kAuto:
          BIX_CHECK(false);
      }
    }
  }

  int64_t grand;
  if (algorithm == EvalAlgorithm::kRangeEval) {
    // All six operators decompose v directly.
    grand = 6 * totals.direct;
  } else {
    // {=, !=} use v; {<=, >} use w = v; {<, >=} use w = v - 1.
    grand = 2 * totals.direct + 2 * totals.bound_full + 2 * totals.bound_minus1;
  }
  return static_cast<double>(grand) / (6.0 * static_cast<double>(c));
}

namespace {

// Digit-uniform expected scans per operator class.
struct ClassTimes {
  double equality = 0;  // ops {=, !=}
  double range = 0;     // ops {<, <=, >, >=}
};

ClassTimes AnalyticClassTimes(const BaseSequence& base,
                              EvalAlgorithm algorithm) {
  const int n = base.num_components();
  ClassTimes out;
  if (algorithm == EvalAlgorithm::kRangeEval) {
    double t = 0;
    for (int i = 0; i < n; ++i) t += 2.0 - 2.0 / base.base(i);
    out.equality = out.range = t;
    return out;
  }
  if (algorithm == EvalAlgorithm::kRangeEvalOpt) {
    for (int i = 0; i < n; ++i) {
      out.equality += 2.0 - 2.0 / base.base(i);
    }
    out.range = 1.0 - 1.0 / base.base(0);
    for (int i = 1; i < n; ++i) out.range += 2.0 - 2.0 / base.base(i);
    return out;
  }
  // EqualityEval: one scan per component for equality; the per-component
  // digit-uniform expectation of the range-path cost otherwise.
  out.equality = n;
  for (int i = 0; i < n; ++i) {
    uint32_t b = base.base(i);
    int64_t digit_total = 0;
    for (uint32_t d = 0; d < b; ++d) {
      digit_total += EqualityRangeDigitScans(b, d, i == 0);
    }
    out.range += static_cast<double>(digit_total) / b;
  }
  return out;
}

}  // namespace

double AnalyticTime(const BaseSequence& base, Encoding encoding,
                    EvalAlgorithm algorithm) {
  return AnalyticTimeForMix(base, encoding, WorkloadMix::Uniform(), algorithm);
}

double AnalyticTimeForMix(const BaseSequence& base, Encoding encoding,
                          const WorkloadMix& mix, EvalAlgorithm algorithm) {
  BIX_CHECK(mix.range_fraction >= 0 && mix.range_fraction <= 1);
  algorithm = ResolveAlgorithm(encoding, algorithm);
  ClassTimes t = AnalyticClassTimes(base, algorithm);
  return mix.range_fraction * t.range +
         (1.0 - mix.range_fraction) * t.equality;
}

int64_t ModelScans(const BaseSequence& base, uint32_t cardinality,
                   Encoding encoding, EvalAlgorithm algorithm, CompareOp op,
                   int64_t v) {
  algorithm = ResolveAlgorithm(encoding, algorithm);
  const int n = base.num_components();
  if (v < 0 || v >= static_cast<int64_t>(cardinality)) return 0;

  if (algorithm == EvalAlgorithm::kRangeEval) {
    std::vector<uint32_t> digits = base.Decompose(static_cast<uint64_t>(v));
    int64_t scans = 0;
    for (int i = 0; i < n; ++i) {
      scans += RangeEvalDigitScans(base.base(i), digits[static_cast<size_t>(i)]);
    }
    return scans;
  }

  if (!IsRangeOp(op)) {
    std::vector<uint32_t> digits = base.Decompose(static_cast<uint64_t>(v));
    int64_t scans = 0;
    for (int i = 0; i < n; ++i) {
      uint32_t d = digits[static_cast<size_t>(i)];
      scans += algorithm == EvalAlgorithm::kRangeEvalOpt
                   ? RangeOptEqDigitScans(base.base(i), d)
                   : 1;
    }
    return scans;
  }

  int64_t w = v;
  if (op == CompareOp::kLt || op == CompareOp::kGe) --w;
  if (w < 0) return 0;
  std::vector<uint32_t> digits = base.Decompose(static_cast<uint64_t>(w));
  int64_t scans = 0;
  for (int i = 0; i < n; ++i) {
    uint32_t d = digits[static_cast<size_t>(i)];
    scans += algorithm == EvalAlgorithm::kRangeEvalOpt
                 ? RangeOptRangeDigitScans(base.base(i), d, i == 0)
                 : EqualityRangeDigitScans(base.base(i), d, i == 0);
  }
  return scans;
}

}  // namespace bix
