#include "core/status.h"

namespace bix {

namespace {
std::string_view CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk: return "OK";
    case Status::Code::kIoError: return "IoError";
    case Status::Code::kCorruption: return "Corruption";
    case Status::Code::kInvalidArgument: return "InvalidArgument";
    case Status::Code::kNotFound: return "NotFound";
    case Status::Code::kDeadlineExceeded: return "DeadlineExceeded";
    case Status::Code::kResourceExhausted: return "ResourceExhausted";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(CodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace bix
