#include "core/base_sequence.h"

#include <algorithm>
#include <limits>

#include "core/check.h"

namespace bix {

namespace {
constexpr uint64_t kCapacityCap = uint64_t{1} << 63;

void CheckBases(std::span<const uint32_t> bases) {
  BIX_CHECK_MSG(!bases.empty(), "base sequence must have >= 1 component");
  for (uint32_t b : bases) {
    BIX_CHECK_MSG(b >= 2, "every base number must be >= 2");
  }
}
}  // namespace

BaseSequence BaseSequence::FromMsbFirst(std::span<const uint32_t> bases) {
  CheckBases(bases);
  std::vector<uint32_t> lsb(bases.rbegin(), bases.rend());
  return BaseSequence(std::move(lsb));
}

BaseSequence BaseSequence::FromMsbFirst(std::initializer_list<uint32_t> bases) {
  return FromMsbFirst(std::span<const uint32_t>(bases.begin(), bases.size()));
}

BaseSequence BaseSequence::FromLsbFirst(std::vector<uint32_t> bases) {
  CheckBases(bases);
  return BaseSequence(std::move(bases));
}

BaseSequence BaseSequence::Uniform(uint32_t b, uint32_t cardinality) {
  BIX_CHECK(b >= 2);
  BIX_CHECK(cardinality >= 1);
  std::vector<uint32_t> bases;
  uint64_t capacity = 1;
  while (capacity < cardinality) {
    bases.push_back(b);
    capacity *= b;
  }
  if (bases.empty()) bases.push_back(b);  // C == 1: one trivial component
  return BaseSequence(std::move(bases));
}

BaseSequence BaseSequence::SingleComponent(uint32_t cardinality) {
  return BaseSequence({std::max<uint32_t>(cardinality, 2)});
}

BaseSequence BaseSequence::BitSliced(uint32_t cardinality) {
  return Uniform(2, cardinality);
}

uint64_t BaseSequence::capacity() const {
  uint64_t product = 1;
  for (uint32_t b : bases_) {
    if (product > kCapacityCap / b) return kCapacityCap;
    product *= b;
  }
  return product;
}

bool BaseSequence::IsWellDefinedFor(uint64_t cardinality) const {
  if (bases_.empty()) return false;
  return capacity() >= cardinality;
}

void BaseSequence::Decompose(uint64_t v, std::vector<uint32_t>* digits) const {
  BIX_DCHECK(v < capacity());
  digits->resize(bases_.size());
  for (size_t i = 0; i < bases_.size(); ++i) {
    (*digits)[i] = static_cast<uint32_t>(v % bases_[i]);
    v /= bases_[i];
  }
}

std::vector<uint32_t> BaseSequence::Decompose(uint64_t v) const {
  std::vector<uint32_t> digits;
  Decompose(v, &digits);
  return digits;
}

uint64_t BaseSequence::Compose(std::span<const uint32_t> digits) const {
  BIX_CHECK(digits.size() == bases_.size());
  uint64_t v = 0;
  for (size_t i = bases_.size(); i-- > 0;) {
    BIX_DCHECK(digits[i] < bases_[i]);
    v = v * bases_[i] + digits[i];
  }
  return v;
}

std::string BaseSequence::ToString() const {
  std::string out = "<";
  for (size_t i = bases_.size(); i-- > 0;) {
    out += std::to_string(bases_[i]);
    if (i != 0) out += ", ";
  }
  out += ">";
  return out;
}

}  // namespace bix
