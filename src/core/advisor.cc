#include "core/advisor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.h"
#include "core/cost_model.h"

namespace bix {

namespace {

constexpr uint64_t kSaturated = uint64_t{1} << 62;

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kSaturated / b) return kSaturated;
  return a * b;
}

uint64_t SatPow(uint64_t b, int e) {
  uint64_t r = 1;
  for (int i = 0; i < e; ++i) r = SatMul(r, b);
  return r;
}

uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

// Builds the least-significant-first arrangement that is time-best for a
// multiset: largest base at component 1, the rest in descending order (the
// closed-form Time depends only on the multiset and on b_1).
BaseSequence ArrangeLargestFirst(std::vector<uint32_t> bases) {
  std::sort(bases.begin(), bases.end(), std::greater<uint32_t>());
  return BaseSequence::FromLsbFirst(std::move(bases));
}

}  // namespace

IndexDesign MakeDesign(const BaseSequence& base, Encoding encoding) {
  return IndexDesign{base, SpaceInBitmaps(base, encoding),
                     AnalyticTime(base, encoding)};
}

int MaxComponents(uint32_t cardinality) {
  BIX_CHECK(cardinality >= 1);
  if (cardinality <= 2) return 1;
  int n = 0;
  uint64_t capacity = 1;
  while (capacity < cardinality) {
    capacity *= 2;
    ++n;
  }
  return n;
}

BaseSequence SpaceOptimalBase(uint32_t cardinality, int n) {
  BIX_CHECK(cardinality >= 2);
  BIX_CHECK(n >= 1 && n <= MaxComponents(cardinality));
  // b = ceil(C^{1/n}): the smallest b with b^n >= C.
  uint32_t b = 2;
  while (SatPow(b, n) < cardinality) ++b;
  // r = smallest positive integer with b^r (b-1)^{n-r} >= C.
  int r = n;
  for (int k = 1; k <= n; ++k) {
    if (b == 2 && k < n) continue;  // base-1 components are not well defined
    if (SatMul(SatPow(b, k), SatPow(b - 1, n - k)) >= cardinality) {
      r = k;
      break;
    }
  }
  // Least-significant first: r components of base b, then n-r of base b-1
  // (larger bases at the cheap low positions).
  std::vector<uint32_t> bases;
  bases.reserve(static_cast<size_t>(n));
  for (int i = 0; i < r; ++i) bases.push_back(b);
  for (int i = r; i < n; ++i) bases.push_back(b - 1);
  return BaseSequence::FromLsbFirst(std::move(bases));
}

int64_t SpaceOptimalBitmaps(uint32_t cardinality, int n) {
  return SpaceInBitmaps(SpaceOptimalBase(cardinality, n), Encoding::kRange);
}

BaseSequence TimeOptimalBase(uint32_t cardinality, int n) {
  BIX_CHECK(cardinality >= 2);
  BIX_CHECK(n >= 1 && n <= MaxComponents(cardinality));
  uint64_t denom = uint64_t{1} << (n - 1);
  uint32_t k = static_cast<uint32_t>(CeilDiv(cardinality, denom));
  BIX_CHECK(k >= 2);
  std::vector<uint32_t> bases(static_cast<size_t>(n), 2);
  bases[0] = k;
  return BaseSequence::FromLsbFirst(std::move(bases));
}

BaseSequence BestSpaceOptimalBase(uint32_t cardinality, int n) {
  const int64_t target_space = SpaceOptimalBitmaps(cardinality, n);
  const int64_t base_sum = target_space + n;  // sum(b_i) with space fixed

  std::vector<uint32_t> current;
  std::vector<uint32_t> best;
  double best_time = std::numeric_limits<double>::infinity();

  // Enumerate non-decreasing multisets of n bases >= 2 with the exact base
  // sum; keep the one whose best arrangement minimizes closed-form Time.
  auto recurse = [&](auto&& self, int slots_left, uint32_t min_b,
                     int64_t sum_left, uint64_t prod) -> void {
    if (slots_left == 0) {
      if (sum_left != 0 || prod < cardinality) return;
      BaseSequence candidate = ArrangeLargestFirst(current);
      double t = AnalyticTime(candidate, Encoding::kRange);
      if (t < best_time) {
        best_time = t;
        best = current;
      }
      return;
    }
    int64_t max_b = sum_left - 2 * (slots_left - 1);
    for (int64_t b = min_b; b <= max_b; ++b) {
      // Upper bound on the final product from this branch.
      if (SatMul(prod, SatPow(static_cast<uint64_t>(max_b), slots_left)) <
          cardinality) {
        break;
      }
      current.push_back(static_cast<uint32_t>(b));
      self(self, slots_left - 1, static_cast<uint32_t>(b), sum_left - b,
           SatMul(prod, static_cast<uint64_t>(b)));
      current.pop_back();
    }
  };
  recurse(recurse, n, 2, base_sum, 1);
  BIX_CHECK(!best.empty());
  return ArrangeLargestFirst(best);
}

BaseSequence KneeBase(uint32_t cardinality) {
  BIX_CHECK(cardinality >= 4);  // a 2-component index needs capacity >= 4
  uint64_t c = cardinality;
  uint32_t b1 = static_cast<uint32_t>(std::ceil(std::sqrt(static_cast<double>(c))));
  while (SatMul(b1, b1) < c) ++b1;
  while (b1 > 2 && SatMul(b1 - 1, b1 - 1) >= c) --b1;
  uint32_t b2 = static_cast<uint32_t>(CeilDiv(c, b1));
  if (b2 < 2) b2 = 2;
  // Largest delta with (b2 - delta)(b1 + delta) >= C; the product is
  // decreasing in delta, so scan down from the cap.
  uint32_t delta = 0;
  for (uint32_t d = b2 >= 2 ? b2 - 2 : 0;; --d) {
    if (static_cast<uint64_t>(b2 - d) * (b1 + d) >= c) {
      delta = d;
      break;
    }
    if (d == 0) break;
  }
  return BaseSequence::FromLsbFirst({b1 + delta, b2 - delta});
}

void EnumerateTightBases(uint32_t cardinality, int max_components,
                         const std::function<void(const BaseSequence&)>& fn) {
  BIX_CHECK(cardinality >= 2);
  std::vector<uint32_t> prefix;
  auto recurse = [&](auto&& self, uint64_t prod, uint32_t min_b) -> void {
    // Close the multiset with the unique tight largest base ceil(C/prod).
    uint64_t leaf = CeilDiv(cardinality, prod);
    if (leaf >= std::max<uint64_t>(min_b, 2)) {
      std::vector<uint32_t> bases;
      bases.reserve(prefix.size() + 1);
      bases.push_back(static_cast<uint32_t>(leaf));  // largest at component 1
      for (size_t i = prefix.size(); i-- > 0;) bases.push_back(prefix[i]);
      fn(BaseSequence::FromLsbFirst(std::move(bases)));
    }
    if (max_components > 0 &&
        static_cast<int>(prefix.size()) + 1 >= max_components) {
      return;
    }
    // Extend with a non-final base (product still short of C).
    uint64_t max_b = (cardinality - 1) / prod;
    for (uint64_t b = min_b; b <= max_b; ++b) {
      prefix.push_back(static_cast<uint32_t>(b));
      self(self, prod * b, static_cast<uint32_t>(b));
      prefix.pop_back();
    }
  };
  recurse(recurse, 1, 2);
}

std::vector<IndexDesign> OptimalFrontier(uint32_t cardinality,
                                         Encoding encoding) {
  std::vector<IndexDesign> all;
  EnumerateTightBases(cardinality, /*max_components=*/0,
                      [&](const BaseSequence& base) {
                        all.push_back(MakeDesign(base, encoding));
                      });
  std::sort(all.begin(), all.end(), [](const IndexDesign& a,
                                       const IndexDesign& b) {
    if (a.space != b.space) return a.space < b.space;
    return a.time < b.time;
  });
  std::vector<IndexDesign> frontier;
  double best_time = std::numeric_limits<double>::infinity();
  for (IndexDesign& d : all) {
    if (!frontier.empty() && frontier.back().space == d.space) continue;
    if (d.time < best_time) {
      best_time = d.time;
      frontier.push_back(std::move(d));
    }
  }
  return frontier;
}

int DefinitionalKneeIndex(const std::vector<IndexDesign>& frontier) {
  const int p = static_cast<int>(frontier.size());
  if (p < 3) return -1;
  const double f = static_cast<double>(frontier.back().space) /
                   frontier.front().time;
  int knee = -1;
  double best_ratio = -1;
  for (int j = 1; j + 1 < p; ++j) {
    const IndexDesign& prev = frontier[static_cast<size_t>(j - 1)];
    const IndexDesign& cur = frontier[static_cast<size_t>(j)];
    const IndexDesign& next = frontier[static_cast<size_t>(j + 1)];
    double lg = (prev.time - cur.time) /
                static_cast<double>(cur.space - prev.space) * f;
    double rg = (cur.time - next.time) /
                static_cast<double>(next.space - cur.space) * f;
    if (lg > 1 && rg < 1 && rg > 0) {
      double ratio = lg / rg;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        knee = j;
      }
    }
  }
  return knee;
}

namespace {

// Enumerates every k-component tight multiset with space <= M and reports
// the time-best design; also optionally counts all (not only tight)
// k-component multisets within the space budget (for CandidateSetSize).
void ForEachTightWithSpaceCap(uint32_t cardinality, int k, int64_t max_bitmaps,
                              const std::function<void(const BaseSequence&)>& fn) {
  std::vector<uint32_t> prefix;
  auto recurse = [&](auto&& self, int depth, uint32_t min_b, uint64_t prod,
                     int64_t space_used) -> void {
    if (depth == k - 1) {
      uint64_t leaf = CeilDiv(cardinality, prod);
      if (leaf < std::max<uint64_t>(min_b, 2)) return;
      if (space_used + static_cast<int64_t>(leaf) - 1 > max_bitmaps) return;
      std::vector<uint32_t> bases;
      bases.reserve(static_cast<size_t>(k));
      bases.push_back(static_cast<uint32_t>(leaf));
      for (size_t i = prefix.size(); i-- > 0;) bases.push_back(prefix[i]);
      fn(BaseSequence::FromLsbFirst(std::move(bases)));
      return;
    }
    int slots_after = k - depth - 1;
    for (uint32_t b = min_b;; ++b) {
      // Space lower bound: every remaining base is >= b.
      if (space_used + static_cast<int64_t>(b - 1) * (slots_after + 1) >
          max_bitmaps) {
        break;
      }
      prefix.push_back(b);
      self(self, depth + 1, b, SatMul(prod, b),
           space_used + static_cast<int64_t>(b) - 1);
      prefix.pop_back();
    }
  };
  recurse(recurse, 0, 2, 1, 0);
}

int64_t CountBasesWithSpaceCap(uint32_t cardinality, int k,
                               int64_t max_bitmaps) {
  int64_t count = 0;
  auto recurse = [&](auto&& self, int depth, uint32_t min_b, uint64_t prod,
                     int64_t space_used) -> void {
    if (depth == k) {
      if (prod >= cardinality) ++count;
      return;
    }
    int slots_after = k - depth - 1;
    for (uint32_t b = min_b;; ++b) {
      if (space_used + static_cast<int64_t>(b - 1) * (slots_after + 1) >
          max_bitmaps) {
        break;
      }
      self(self, depth + 1, b, SatMul(prod, b),
           space_used + static_cast<int64_t>(b) - 1);
    }
  };
  recurse(recurse, 0, 2, 1, 0);
  return count;
}

// Steps 1-3 shared by TimeOptAlg, TimeOptHeur bookkeeping and Fig. 15.
struct ConstraintBounds {
  bool feasible = false;
  int n0 = 0;       // least components with space-optimal space <= M
  int n_prime = 0;  // least n >= n0 with time-optimal space <= M
  bool shortcut = false;  // time-optimal n0-component index already fits
};

ConstraintBounds ComputeBounds(uint32_t cardinality, int64_t max_bitmaps) {
  ConstraintBounds out;
  int max_n = MaxComponents(cardinality);
  for (int n = 1; n <= max_n; ++n) {
    if (SpaceOptimalBitmaps(cardinality, n) <= max_bitmaps) {
      out.feasible = true;
      out.n0 = n;
      break;
    }
  }
  if (!out.feasible) return out;
  if (SpaceInBitmaps(TimeOptimalBase(cardinality, out.n0), Encoding::kRange) <=
      max_bitmaps) {
    out.shortcut = true;
    out.n_prime = out.n0;
    return out;
  }
  for (int n = out.n0 + 1; n <= max_n; ++n) {
    if (SpaceInBitmaps(TimeOptimalBase(cardinality, n), Encoding::kRange) <=
        max_bitmaps) {
      out.n_prime = n;
      return out;
    }
  }
  // Unreachable: the all-base-2 index (n = max_n) is both space- and
  // time-optimal at that component count and fits whenever feasible.
  BIX_CHECK(false);
  return out;
}

}  // namespace

ConstrainedResult TimeOptAlg(uint32_t cardinality, int64_t max_bitmaps) {
  ConstrainedResult result;
  ConstraintBounds bounds = ComputeBounds(cardinality, max_bitmaps);
  if (!bounds.feasible) return result;
  result.feasible = true;
  if (bounds.shortcut) {
    result.design = MakeDesign(TimeOptimalBase(cardinality, bounds.n0));
    return result;
  }
  IndexDesign best = MakeDesign(TimeOptimalBase(cardinality, bounds.n_prime));
  for (int k = bounds.n0; k < bounds.n_prime; ++k) {
    ForEachTightWithSpaceCap(cardinality, k, max_bitmaps,
                             [&](const BaseSequence& base) {
                               IndexDesign d = MakeDesign(base);
                               if (d.time < best.time) best = d;
                             });
  }
  result.design = best;
  return result;
}

std::pair<int, BaseSequence> FindSmallestN(uint32_t cardinality,
                                           int64_t max_bitmaps) {
  int max_n = MaxComponents(cardinality);
  if (max_bitmaps < max_n) return {0, BaseSequence()};
  for (int n = 1; n <= max_n; ++n) {
    uint64_t b = static_cast<uint64_t>(max_bitmaps + n) / n;
    uint64_t r = static_cast<uint64_t>(max_bitmaps + n) % n;
    if (b < 2) continue;
    if (SatMul(SatPow(b + 1, static_cast<int>(r)),
               SatPow(b, n - static_cast<int>(r))) < cardinality) {
      continue;
    }
    // r components of base b+1 (low positions), n-r of base b; Space == M.
    std::vector<uint32_t> bases;
    bases.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < r; ++i) bases.push_back(static_cast<uint32_t>(b + 1));
    for (int i = static_cast<int>(r); i < n; ++i) {
      bases.push_back(static_cast<uint32_t>(b));
    }
    return {n, BaseSequence::FromLsbFirst(std::move(bases))};
  }
  return {0, BaseSequence()};
}

BaseSequence RefineIndex(const BaseSequence& base, uint32_t cardinality) {
  const int n = base.num_components();
  std::vector<uint32_t> seq(base.bases_lsb_first().begin(),
                            base.bases_lsb_first().end());
  std::sort(seq.begin(), seq.end());
  std::vector<uint32_t> assigned;  // bases fixed for components n..2

  for (int round = 0; round < n - 1; ++round) {
    uint32_t bp = seq.front();
    seq.erase(seq.begin());
    if (bp > 2 && !seq.empty()) {
      uint32_t bq = seq.front();
      // Product of every other component (assigned + rest of seq).
      uint64_t others = 1;
      for (uint32_t a : assigned) others = SatMul(others, a);
      for (size_t i = 1; i < seq.size(); ++i) others = SatMul(others, seq[i]);
      // Largest delta <= bp - 2 preserving capacity; the pair product
      // (bp - d)(bq + d) is non-increasing in d here since bp <= bq.
      uint32_t delta = 0;
      for (uint32_t d = bp - 2;; --d) {
        if (SatMul(SatMul(bp - d, bq + d), others) >=
            static_cast<uint64_t>(cardinality)) {
          delta = d;
          break;
        }
        if (d == 0) break;
      }
      if (delta > 0) {
        bp -= delta;
        seq.erase(seq.begin());
        seq.insert(std::lower_bound(seq.begin(), seq.end(), bq + delta),
                   bq + delta);
      }
    }
    assigned.push_back(bp);
  }

  // Component 1 absorbs the residual capacity requirement.
  uint64_t rest = 1;
  for (uint32_t a : assigned) rest = SatMul(rest, a);
  uint32_t b1 = static_cast<uint32_t>(
      std::max<uint64_t>(2, CeilDiv(cardinality, rest)));

  std::vector<uint32_t> bases;
  bases.reserve(static_cast<size_t>(n));
  bases.push_back(b1);
  // Larger refined bases at lower positions.
  std::sort(assigned.begin(), assigned.end(), std::greater<uint32_t>());
  for (uint32_t a : assigned) bases.push_back(a);
  return BaseSequence::FromLsbFirst(std::move(bases));
}

ConstrainedResult TimeOptHeur(uint32_t cardinality, int64_t max_bitmaps) {
  ConstrainedResult result;
  auto [n, seed] = FindSmallestN(cardinality, max_bitmaps);
  if (n == 0) return result;
  result.feasible = true;
  if (SpaceInBitmaps(TimeOptimalBase(cardinality, n), Encoding::kRange) <=
      max_bitmaps) {
    result.design = MakeDesign(TimeOptimalBase(cardinality, n));
    return result;
  }
  result.design = MakeDesign(RefineIndex(seed, cardinality));
  return result;
}

int64_t CandidateSetSize(uint32_t cardinality, int64_t max_bitmaps) {
  ConstraintBounds bounds = ComputeBounds(cardinality, max_bitmaps);
  if (!bounds.feasible) return 0;
  if (bounds.shortcut) return 1;
  int64_t total = 1;  // the n'-component time-optimal index
  for (int k = bounds.n0; k < bounds.n_prime; ++k) {
    total += CountBasesWithSpaceCap(cardinality, k, max_bitmaps);
  }
  return total;
}

}  // namespace bix
