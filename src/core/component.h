// One component of a decomposed bitmap index (paper Section 2).
//
// A component indexes a single digit of the decomposed attribute value under
// one of the two encoding schemes.  It owns the physically stored bitmaps;
// slot semantics are documented in core/bitmap_source.h.

#ifndef BIX_CORE_COMPONENT_H_
#define BIX_CORE_COMPONENT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bitmap/bitvector.h"
#include "core/predicate.h"

namespace bix {

class IndexComponent {
 public:
  /// Builds the component for `digits` (one digit per record, in RID order).
  /// Records whose bit is clear in `non_null` contribute no set bits; their
  /// digit entries are ignored.
  static IndexComponent Build(Encoding encoding, uint32_t base,
                              std::span<const uint32_t> digits,
                              const Bitvector& non_null);

  Encoding encoding() const { return encoding_; }
  uint32_t base() const { return base_; }
  int num_stored_bitmaps() const { return static_cast<int>(bitmaps_.size()); }

  const Bitvector& stored(uint32_t slot) const {
    return bitmaps_[static_cast<size_t>(slot)];
  }

  /// Appends one record with the given digit (`is_null` suppresses all
  /// bits); every stored bitmap grows by one bit.
  void AppendDigit(uint32_t digit, bool is_null);

  /// Pre-allocates every stored bitmap for `num_bits` total bits, so an
  /// AppendDigit loop up to that length never reallocates.
  void Reserve(size_t num_bits) {
    for (Bitvector& b : bitmaps_) b.Reserve(num_bits);
  }

  /// Total bytes across the component's bitmaps (uncompressed, bit-packed).
  int64_t SizeInBytes() const;

 private:
  IndexComponent(Encoding encoding, uint32_t base,
                 std::vector<Bitvector> bitmaps)
      : encoding_(encoding), base_(base), bitmaps_(std::move(bitmaps)) {}

  Encoding encoding_;
  uint32_t base_;
  std::vector<Bitvector> bitmaps_;
};

}  // namespace bix

#endif  // BIX_CORE_COMPONENT_H_
