// Design-space optimization for range-encoded bitmap indexes
// (paper Sections 6-8).
//
// Implements, over the space of well-defined base sequences:
//  * Theorem 6.1: the n-component space-optimal and time-optimal bases.
//  * Theorem 7.1: the knee of the space-time tradeoff (closed form), plus
//    its definitional counterpart computed from the optimal frontier.
//  * Section 8: TimeOptAlg (exhaustive) and TimeOptHeur (FindSmallestN +
//    RefineIndex, Theorem 8.1) for the time-optimal index under a
//    disk-space constraint, and the candidate-set size |I| (Fig. 15).
//
// All ranking uses the closed-form Time of core/cost_model.h (as the paper
// does); the design space is enumerated through its finite canonical core of
// "tight" base multisets — multisets in which no base number can be lowered
// without losing capacity C.  Every non-tight index is dominated in both
// space and time by a tight one, so frontiers and optima are unaffected.
// Within a multiset the time-best arrangement places the largest base at
// component 1 (it benefits from the cheaper range-path scans there).

#ifndef BIX_CORE_ADVISOR_H_
#define BIX_CORE_ADVISOR_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/base_sequence.h"
#include "core/predicate.h"

namespace bix {

/// A candidate index design with its cost-model coordinates.
struct IndexDesign {
  BaseSequence base;
  int64_t space = 0;  // stored bitmaps
  double time = 0;    // expected bitmap scans (closed form)
};

/// Builds an IndexDesign for a base under the given encoding (default:
/// range, the paper's focus from Section 5 on).
IndexDesign MakeDesign(const BaseSequence& base,
                       Encoding encoding = Encoding::kRange);

/// Largest meaningful component count for cardinality C (all-base-2).
int MaxComponents(uint32_t cardinality);

/// Theorem 6.1(1): an n-component space-optimal base, built as
/// <b-1, ..., b-1, b, ..., b> with b = ceil(C^{1/n}) and r trailing b's,
/// r minimal with b^r (b-1)^{n-r} >= C.  Requires 1 <= n <= MaxComponents.
BaseSequence SpaceOptimalBase(uint32_t cardinality, int n);

/// Number of bitmaps in the n-component space-optimal index: n(b-2) + r.
int64_t SpaceOptimalBitmaps(uint32_t cardinality, int n);

/// Theorem 6.1(3): the n-component time-optimal base
/// <2, ..., 2, ceil(C / 2^{n-1})>.
BaseSequence TimeOptimalBase(uint32_t cardinality, int n);

/// The most time-efficient index among all n-component space-optimal
/// indexes (the space-optimal index is generally not unique; the paper's
/// plots and the knee use this representative).  Found by exhaustive search
/// over equal-space multisets.
BaseSequence BestSpaceOptimalBase(uint32_t cardinality, int n);

/// Theorem 7.1 (closed form): the knee index — the most time-efficient
/// 2-component space-optimal index, <b_2 - delta, b_1 + delta> with
/// b_1 = ceil(sqrt(C)), b_2 = ceil(C/b_1) and delta the largest shift
/// keeping (b_2 - delta)(b_1 + delta) >= C.
BaseSequence KneeBase(uint32_t cardinality);

/// Enumerates all tight base multisets for cardinality C (bases listed
/// least-significant first, largest base first, i.e. in the time-best
/// arrangement).  `max_components` <= 0 means no limit.
void EnumerateTightBases(uint32_t cardinality, int max_components,
                         const std::function<void(const BaseSequence&)>& fn);

/// The set S of optimal indexes: designs not dominated in both space and
/// time, sorted by increasing space (decreasing time).
std::vector<IndexDesign> OptimalFrontier(uint32_t cardinality,
                                         Encoding encoding = Encoding::kRange);

/// The paper's Section 7 definitional knee over a frontier: the index with
/// LG > 1, RG < 1 maximizing LG/RG under normalized gradients.  Returns an
/// index into `frontier`, or -1 if the frontier has fewer than 3 points.
int DefinitionalKneeIndex(const std::vector<IndexDesign>& frontier);

/// Result of a constrained optimization; `feasible` is false when even the
/// most space-efficient index exceeds M bitmaps.
struct ConstrainedResult {
  bool feasible = false;
  IndexDesign design;
};

/// Section 8.1, Algorithm TimeOptAlg: the exact time-optimal index using at
/// most M bitmaps (exhaustive over the bounded candidate set).
ConstrainedResult TimeOptAlg(uint32_t cardinality, int64_t max_bitmaps);

/// Section 8.2, Algorithm TimeOptHeur: near-optimal heuristic
/// (FindSmallestN seed + RefineIndex improvement).
ConstrainedResult TimeOptHeur(uint32_t cardinality, int64_t max_bitmaps);

/// Algorithm FindSmallestN: the least component count n such that an
/// n-component index with exactly M bitmaps covers C, and such an index
/// (bases balanced; Space == M).  Returns {0, {}} if infeasible.
std::pair<int, BaseSequence> FindSmallestN(uint32_t cardinality,
                                           int64_t max_bitmaps);

/// Algorithm RefineIndex (Theorem 8.1): improves the time-efficiency of an
/// index without increasing its space, by repeatedly shrinking the smallest
/// base toward 2 while growing the next-smallest, subject to capacity.
BaseSequence RefineIndex(const BaseSequence& base, uint32_t cardinality);

/// Size of TimeOptAlg's candidate set I as a function of M (Fig. 15);
/// counts base multisets.  Returns 0 when infeasible.
int64_t CandidateSetSize(uint32_t cardinality, int64_t max_bitmaps);

}  // namespace bix

#endif  // BIX_CORE_ADVISOR_H_
