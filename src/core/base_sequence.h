// Attribute value decomposition (paper Section 2, dimension 1).
//
// A BaseSequence <b_n, b_n-1, ..., b_1> defines a mixed-radix decomposition
// of attribute values into n digits, one per index component.  Component 1
// (the paper's b_1) holds the least-significant digit; internally components
// are indexed 0-based from the least-significant side, i.e. component(0) is
// the paper's component 1.

#ifndef BIX_CORE_BASE_SEQUENCE_H_
#define BIX_CORE_BASE_SEQUENCE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bix {

class BaseSequence {
 public:
  BaseSequence() = default;

  /// Constructs from bases listed most-significant first, the paper's
  /// <b_n, ..., b_1> notation.  Every base must be >= 2.
  static BaseSequence FromMsbFirst(std::span<const uint32_t> bases);
  static BaseSequence FromMsbFirst(std::initializer_list<uint32_t> bases);

  /// Constructs from bases listed least-significant first (b_1 first).
  static BaseSequence FromLsbFirst(std::vector<uint32_t> bases);

  /// The n-component uniform base-b sequence with capacity >= cardinality.
  static BaseSequence Uniform(uint32_t b, uint32_t cardinality);

  /// The single-component base-C sequence (Value-List / one digit).
  static BaseSequence SingleComponent(uint32_t cardinality);

  /// The maximal decomposition: base-2, ceil(log2(C)) components
  /// (the binary / Bit-Sliced shape).
  static BaseSequence BitSliced(uint32_t cardinality);

  int num_components() const { return static_cast<int>(bases_.size()); }

  /// Base of component `i`, 0-based from the least-significant digit;
  /// base(0) is the paper's b_1.
  uint32_t base(int i) const { return bases_[static_cast<size_t>(i)]; }

  /// Bases least-significant first.
  std::span<const uint32_t> bases_lsb_first() const { return bases_; }

  /// Product of all bases, saturated at 2^63 to avoid overflow.  An index
  /// over attribute cardinality C is well defined iff capacity() >= C.
  uint64_t capacity() const;

  /// True iff all bases are >= 2 and capacity() >= cardinality.
  bool IsWellDefinedFor(uint64_t cardinality) const;

  /// Digits of `v` (0 <= v < capacity()), least-significant first.
  /// `digits` is resized to num_components().
  void Decompose(uint64_t v, std::vector<uint32_t>* digits) const;
  std::vector<uint32_t> Decompose(uint64_t v) const;

  /// Inverse of Decompose.
  uint64_t Compose(std::span<const uint32_t> digits) const;

  /// Paper notation, e.g. "<3, 3, 2>" (most-significant first).
  std::string ToString() const;

  friend bool operator==(const BaseSequence& a, const BaseSequence& b) {
    return a.bases_ == b.bases_;
  }

 private:
  explicit BaseSequence(std::vector<uint32_t> bases_lsb_first)
      : bases_(std::move(bases_lsb_first)) {}

  std::vector<uint32_t> bases_;  // least-significant digit first
};

}  // namespace bix

#endif  // BIX_CORE_BASE_SEQUENCE_H_
