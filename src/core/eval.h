// Predicate evaluation algorithms over encoded bitmap indexes (Section 3).
//
// Three algorithms are provided:
//  * RangeEval      — O'Neil & Quass's Algorithm 4.3 for range-encoded
//                     indexes, as reproduced in the paper's Figure 6 (left).
//                     It threads an equality bitmap B_EQ through every
//                     component and accumulates B_LT / B_GT sides.
//  * RangeEvalOpt   — the paper's improved algorithm (Figure 6, right).  It
//                     rewrites every range predicate in terms of `<=` alone
//                     using  A < v ≡ A <= v-1,  A > v ≡ ¬(A <= v),
//                     A >= v ≡ ¬(A <= v-1),  needing a single accumulator
//                     bitmap, ~50% fewer bitmap operations and one fewer
//                     bitmap scan per range predicate.
//  * EqualityEval   — evaluation over equality-encoded indexes.  The paper
//                     defers its listing to the technical report; this is
//                     the standard digit-recursive evaluation
//                     B = LT_i ∨ (EQ_i ∧ B) with complement-side
//                     optimization, so a range predicate costs between 1 and
//                     1 + floor((b_i-1)/2) scans per component, matching the
//                     bounds the paper states.
//
// All algorithms follow the published pseudocode literally (including
// operations whose operand happens to be all-ones) so that measured scan/op
// counts match the paper's analytic cost model exactly; see
// core/cost_model.h for the closed forms.
//
// Results are always masked with B_nn; NULL records never qualify.
//
// Bit r of a result refers to row r *of the source*: for an index built
// over row-reordered input that is a physical (build-order) position, not
// the caller's row id.  The storage/serve entry points remap sorted-index
// results to logical row ids before surfacing them (core/row_order.h);
// anything consuming these raw results with a sorted source must do the
// same.

#ifndef BIX_CORE_EVAL_H_
#define BIX_CORE_EVAL_H_

#include <cstdint>

#include "bitmap/bitvector.h"
#include "core/bitmap_source.h"
#include "core/eval_stats.h"
#include "core/predicate.h"

namespace bix {

/// Which substrate the evaluation operators run on.
///  * kPlain — dense Bitvector words (the paper's model; decompress first if
///             the source stores compressed bitmaps).
///  * kWah   — run-at-a-time on the WAH-compressed form; operands fetched
///             via BitmapSource::FetchWah stay compressed end to end.
///  * kAuto  — per-operand choice: an operand stays compressed while its
///             WAH form is markedly smaller than dense, otherwise it is
///             inflated once and the op runs on words.
/// Every engine produces bit-identical results and identical EvalStats; the
/// choice only moves where the work happens (exec/wah_engine.h).
enum class EngineKind : uint8_t { kPlain, kWah, kAuto };

const char* ToString(EngineKind kind);

/// Execution knobs for the evaluation engines (exec/segmented_eval.h
/// implements the overload of EvaluatePredicate that takes these; the plain
/// overload below is always sequential).  `num_threads` is the total number
/// of concurrent lanes (1 = sequential segment loop, no pool).
/// `segment_bits` is log2 of the bits per segment; the default 16 gives 8 KB
/// spans so a segment's whole operator chain runs in L1/L2.  `engine`
/// selects the operator substrate; the compressed-domain engines are
/// single-threaded (runs, not segments, are their unit of work), so
/// `engine != kPlain` ignores the two segmentation knobs.  Results are
/// bit-identical to sequential evaluation and EvalStats counts are
/// unchanged: segmentation and compressed execution reassociate the work,
/// they never reorder the algorithm.
struct ExecOptions {
  int num_threads = 1;
  uint32_t segment_bits = 16;
  EngineKind engine = EngineKind::kPlain;
};

/// Evaluates `A op v` over `source` with the given algorithm (kAuto picks
/// RangeEvalOpt or EqualityEval by the source's encoding).  Aborts if the
/// algorithm does not match the encoding.  `v` may be any integer; values
/// outside [0, C) yield the trivial result.
Bitvector EvaluatePredicate(const BitmapSource& source,
                            EvalAlgorithm algorithm, CompareOp op, int64_t v,
                            EvalStats* stats = nullptr);

/// The individual algorithms (exposed for targeted tests and benchmarks).
Bitvector RangeEval(const BitmapSource& source, CompareOp op, int64_t v,
                    EvalStats* stats = nullptr);
Bitvector RangeEvalOpt(const BitmapSource& source, CompareOp op, int64_t v,
                       EvalStats* stats = nullptr);
Bitvector EqualityEval(const BitmapSource& source, CompareOp op, int64_t v,
                       EvalStats* stats = nullptr);

namespace eval_internal {

/// Folds one evaluation's stats delta and latency into the process-wide
/// metrics registry (a handful of relaxed atomic adds per query).  Shared by
/// the sequential entry point above and the segmented one in exec/ so both
/// feed the same eval.* metrics.
void RecordQueryMetrics(const EvalStats& delta, int64_t latency_ns);

}  // namespace eval_internal

}  // namespace bix

#endif  // BIX_CORE_EVAL_H_
