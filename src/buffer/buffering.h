// Bitmap buffering and its effect on the space-time tradeoff
// (paper Section 10).
//
// The unit of buffering is a bitmap.  A buffer assignment <f_n, ..., f_1>
// pins f_i bitmaps of component i in memory; under the paper's
// uniform-reference assumption a fetch in component i hits the buffer with
// probability f_i / (b_i - 1), giving (Eq. 6, re-derived; see DESIGN.md §5)
//
//   Time(I, f) = 2(n - sum_i (1+f_i)/b_i) - (2/3)(1 - (1+f_1)/b_1)
//
// for range-encoded indexes under RangeEval-Opt.  Theorem 10.1's optimal
// buffering policy is implemented as the equivalent greedy on exact
// marginal gains (component 1 gains (4/3)/b_1 per pinned bitmap, component
// i > 1 gains 2/b_i); Theorem 10.2 gives the buffered time-optimal index.
// A BufferedSource wrapper simulates pinning over any BitmapSource so the
// analytic hit model can be validated against measured scans.

#ifndef BIX_BUFFER_BUFFERING_H_
#define BIX_BUFFER_BUFFERING_H_

#include <cstdint>
#include <vector>

#include "core/base_sequence.h"
#include "core/bitmap_source.h"

namespace bix {

/// Bitmaps pinned per component (least-significant component first).
/// Well defined when 0 <= f_i <= b_i - 1 (a range-encoded component stores
/// b_i - 1 bitmaps).
struct BufferAssignment {
  std::vector<uint32_t> pinned;

  int64_t total() const {
    int64_t t = 0;
    for (uint32_t f : pinned) t += f;
    return t;
  }
};

/// Expected scans under the assignment (range encoding, RangeEval-Opt).
double BufferedAnalyticTime(const BaseSequence& base,
                            const BufferAssignment& assignment);

/// Theorem 10.1: an optimal assignment of `budget` pinned bitmaps, greedy
/// on per-bitmap marginal gain.  Pins min(budget, Space(I)) bitmaps.
BufferAssignment OptimalBufferAssignment(const BaseSequence& base,
                                         int64_t budget);

struct BufferedDesign {
  BaseSequence base;
  BufferAssignment assignment;
  int64_t space = 0;  // stored bitmaps
  double time = 0;    // expected scans with the assignment
};

/// Theorem 10.2: with m > 0 buffered bitmaps, the time-optimal index is the
/// min(m, max-components)-component index <2, ..., 2, ceil(C/2^{m-1})> with
/// the base-2 components fully pinned and one pinned bitmap in component 1.
BufferedDesign BufferedTimeOptimal(uint32_t cardinality, int64_t buffered);

/// The optimal space-time frontier when every design may pin up to
/// `buffered` bitmaps under its optimal assignment (Fig. 17 series).
std::vector<BufferedDesign> BufferedFrontier(uint32_t cardinality,
                                             int64_t buffered);

/// Wraps a BitmapSource, serving pinned bitmaps from memory: a Fetch of a
/// pinned slot counts a buffer hit instead of a bitmap scan.  Pinned slots
/// are spread evenly across each component's stored bitmaps.
class BufferedSource final : public BitmapSource {
 public:
  BufferedSource(const BitmapSource& inner, const BufferAssignment& assignment);

  const BaseSequence& base() const override { return inner_.base(); }
  Encoding encoding() const override { return inner_.encoding(); }
  size_t num_records() const override { return inner_.num_records(); }
  uint32_t cardinality() const override { return inner_.cardinality(); }
  const Bitvector& non_null() const override { return inner_.non_null(); }
  Bitvector Fetch(int component, uint32_t slot,
                  EvalStats* stats) const override;

 private:
  const BitmapSource& inner_;
  std::vector<std::vector<bool>> pinned_;  // [component][slot]
};

}  // namespace bix

#endif  // BIX_BUFFER_BUFFERING_H_
