#include "buffer/buffering.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/advisor.h"
#include "core/check.h"
#include "core/cost_model.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace bix {

namespace {

void CheckAssignment(const BaseSequence& base,
                     const BufferAssignment& assignment) {
  BIX_CHECK(static_cast<int>(assignment.pinned.size()) ==
            base.num_components());
  for (int i = 0; i < base.num_components(); ++i) {
    BIX_CHECK_MSG(assignment.pinned[static_cast<size_t>(i)] <= base.base(i) - 1,
                  "assignment pins more bitmaps than the component stores");
  }
}

}  // namespace

double BufferedAnalyticTime(const BaseSequence& base,
                            const BufferAssignment& assignment) {
  CheckAssignment(base, assignment);
  const int n = base.num_components();
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    sum += (1.0 + assignment.pinned[static_cast<size_t>(i)]) / base.base(i);
  }
  double u1 = (1.0 + assignment.pinned[0]) / base.base(0);
  return 2.0 * (n - sum) - (2.0 / 3.0) * (1.0 - u1);
}

BufferAssignment OptimalBufferAssignment(const BaseSequence& base,
                                         int64_t budget) {
  const int n = base.num_components();
  BufferAssignment assignment;
  assignment.pinned.assign(static_cast<size_t>(n), 0);
  // Marginal gain of pinning one more bitmap is constant per component:
  // (4/3)/b_1 for component 1, 2/b_i otherwise (Theorem 10.1's priority
  // classes follow: a component i > 1 outranks component 1 iff
  // 2 b_i <= 3 b_1, and smaller bases outrank larger ones).
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  auto gain = [&](int i) {
    return i == 0 ? (4.0 / 3.0) / base.base(0) : 2.0 / base.base(i);
  };
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return gain(a) > gain(b); });
  int64_t remaining = budget;
  for (int i : order) {
    if (remaining <= 0) break;
    int64_t take = std::min<int64_t>(remaining, base.base(i) - 1);
    assignment.pinned[static_cast<size_t>(i)] = static_cast<uint32_t>(take);
    remaining -= take;
  }
  return assignment;
}

BufferedDesign BufferedTimeOptimal(uint32_t cardinality, int64_t buffered) {
  BufferedDesign out;
  int n = 1;
  if (buffered > 0) {
    n = static_cast<int>(
        std::min<int64_t>(buffered, MaxComponents(cardinality)));
  }
  out.base = TimeOptimalBase(cardinality, n);
  out.assignment = OptimalBufferAssignment(out.base, buffered);
  out.space = SpaceInBitmaps(out.base, Encoding::kRange);
  out.time = BufferedAnalyticTime(out.base, out.assignment);
  return out;
}

std::vector<BufferedDesign> BufferedFrontier(uint32_t cardinality,
                                             int64_t buffered) {
  std::vector<BufferedDesign> all;
  EnumerateTightBases(cardinality, /*max_components=*/0,
                      [&](const BaseSequence& base) {
                        BufferedDesign d;
                        d.base = base;
                        d.assignment = OptimalBufferAssignment(base, buffered);
                        d.space = SpaceInBitmaps(base, Encoding::kRange);
                        d.time = BufferedAnalyticTime(base, d.assignment);
                        all.push_back(std::move(d));
                      });
  std::sort(all.begin(), all.end(),
            [](const BufferedDesign& a, const BufferedDesign& b) {
              if (a.space != b.space) return a.space < b.space;
              return a.time < b.time;
            });
  std::vector<BufferedDesign> frontier;
  double best = std::numeric_limits<double>::infinity();
  for (BufferedDesign& d : all) {
    if (!frontier.empty() && frontier.back().space == d.space) continue;
    if (d.time < best) {
      best = d.time;
      frontier.push_back(std::move(d));
    }
  }
  return frontier;
}

BufferedSource::BufferedSource(const BitmapSource& inner,
                               const BufferAssignment& assignment)
    : inner_(inner) {
  CheckAssignment(inner.base(), assignment);
  const int n = inner.base().num_components();
  pinned_.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    uint32_t stored = NumStoredBitmaps(inner.encoding(), inner.base().base(i));
    auto& flags = pinned_[static_cast<size_t>(i)];
    flags.assign(stored, false);
    uint32_t f = assignment.pinned[static_cast<size_t>(i)];
    // Spread pinned slots evenly across the component.
    for (uint32_t k = 0; k < f; ++k) {
      flags[static_cast<size_t>(k) * stored / f] = true;
    }
  }
}

Bitvector BufferedSource::Fetch(int component, uint32_t slot,
                                EvalStats* stats) const {
  auto& reg = obs::MetricsRegistry::Global();
  static obs::Counter& hits = reg.GetCounter("buffer.hits");
  static obs::Counter& misses = reg.GetCounter("buffer.misses");
  const bool hit = pinned_[static_cast<size_t>(component)][slot];
  obs::TraceSpan span("fetch", "buffered");
  span.set_component(component);
  span.set_slot(slot);
  span.set_hit(hit);
  if (hit) {
    hits.Increment();
    if (stats != nullptr) {
      ++stats->buffer_hits;
      obs::ProfCount(obs::ProfCounter::kBufferHits);
    }
    return inner_.Fetch(component, slot, nullptr);
  }
  misses.Increment();
  return inner_.Fetch(component, slot, stats);
}

}  // namespace bix
