// Cost-model audit: the paper's analytic predictions as a checked invariant.
//
// The library's central claim is that the closed-form cost model
// (core/cost_model.h) predicts the *exact* number of bitmap scans every
// evaluation algorithm performs.  This header turns that claim into a
// continuously checkable property: given an executed query and its index
// design, compare the measured EvalStats against the model's predictions
// and report drift.  Predictions cover both the scan count (via the
// closed-form ModelScans) and the full operation mix, obtained by a
// structural replay of the evaluation algorithm over a 1-record dummy
// source — the algorithms' control flow depends only on (base, cardinality,
// op, v), never on bitmap contents, so the replay is exact by construction.

#ifndef BIX_OBS_AUDIT_H_
#define BIX_OBS_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/base_sequence.h"
#include "core/bitmap_source.h"
#include "core/eval_stats.h"
#include "core/predicate.h"

namespace bix::obs {

/// Exact per-query prediction of bitmap scans and bitwise operations for
/// `A op v` under the given design, by structural replay of the evaluation
/// algorithm (bytes_read / buffer_hits are storage properties and stay 0).
/// The scan count always equals cost_model.h's ModelScans.
EvalStats PredictStats(const BaseSequence& base, uint32_t cardinality,
                       Encoding encoding, EvalAlgorithm algorithm,
                       CompareOp op, int64_t v);

/// Audit verdict for one executed query.
struct QueryAudit {
  CompareOp op = CompareOp::kEq;
  int64_t v = 0;
  EvalStats measured;
  EvalStats predicted;

  int64_t scan_drift() const {
    return measured.bitmap_scans - predicted.bitmap_scans;
  }
  int64_t op_drift() const { return measured.TotalOps() - predicted.TotalOps(); }
  /// True when measured scans and the full op mix match the model exactly.
  /// Buffered sources satisfy scans + hits == predicted scans instead
  /// (a hit replaces a scan); both forms are accepted.
  bool ok() const {
    bool scans_ok =
        measured.bitmap_scans == predicted.bitmap_scans ||
        measured.bitmap_scans + measured.buffer_hits == predicted.bitmap_scans;
    return scans_ok && measured.and_ops == predicted.and_ops &&
           measured.or_ops == predicted.or_ops &&
           measured.xor_ops == predicted.xor_ops &&
           measured.not_ops == predicted.not_ops;
  }
  std::string ToText() const;
};

/// Audits one executed query: pairs `measured` with the model prediction.
QueryAudit AuditQuery(const BaseSequence& base, uint32_t cardinality,
                      Encoding encoding, EvalAlgorithm algorithm, CompareOp op,
                      int64_t v, const EvalStats& measured);

/// Aggregate audit over a query sweep.
struct AuditReport {
  int64_t queries_checked = 0;
  int64_t queries_failed = 0;
  int64_t max_abs_scan_drift = 0;
  int64_t max_abs_op_drift = 0;
  double measured_mean_scans = 0;  // per-query average over the sweep
  double expected_mean_scans = 0;  // cost_model ExactTime for the design
  std::vector<QueryAudit> failures;  // first kMaxFailuresKept mismatches

  static constexpr size_t kMaxFailuresKept = 16;

  bool ok() const { return queries_failed == 0; }
  std::string ToText() const;
  std::string ToJson() const;
};

/// Evaluates every query of the paper's query space Q = {op, v} x
/// [0, C) over `source` with `algorithm`, auditing each against the model.
/// Runs 6C evaluations — intended for tests and offline checks, not for
/// production query paths.
AuditReport AuditSource(const BitmapSource& source,
                        EvalAlgorithm algorithm = EvalAlgorithm::kAuto);

}  // namespace bix::obs

#endif  // BIX_OBS_AUDIT_H_
