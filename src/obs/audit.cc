#include "obs/audit.h"

#include <cstdlib>
#include <sstream>

#include "core/cost_model.h"
#include "core/eval.h"

namespace bix::obs {

namespace {

// Minimal BitmapSource whose bitmaps carry no information: 1 record, every
// stored bitmap zero.  The evaluation algorithms' fetch/op sequence depends
// only on (base, cardinality, op, v), so running them over this source
// replays the exact control flow of a real evaluation at negligible cost.
class ReplaySource final : public BitmapSource {
 public:
  ReplaySource(const BaseSequence& base, uint32_t cardinality,
               Encoding encoding)
      : base_(base),
        cardinality_(cardinality),
        encoding_(encoding),
        non_null_(Bitvector::Ones(1)) {}

  const BaseSequence& base() const override { return base_; }
  Encoding encoding() const override { return encoding_; }
  size_t num_records() const override { return 1; }
  uint32_t cardinality() const override { return cardinality_; }
  const Bitvector& non_null() const override { return non_null_; }
  Bitvector Fetch(int /*component*/, uint32_t /*slot*/,
                  EvalStats* stats) const override {
    if (stats != nullptr) ++stats->bitmap_scans;
    return Bitvector::Zeros(1);
  }

 private:
  const BaseSequence& base_;
  uint32_t cardinality_;
  Encoding encoding_;
  Bitvector non_null_;
};

}  // namespace

EvalStats PredictStats(const BaseSequence& base, uint32_t cardinality,
                       Encoding encoding, EvalAlgorithm algorithm,
                       CompareOp op, int64_t v) {
  ReplaySource replay(base, cardinality, encoding);
  EvalStats predicted;
  EvaluatePredicate(replay, algorithm, op, v, &predicted);
  return predicted;
}

QueryAudit AuditQuery(const BaseSequence& base, uint32_t cardinality,
                      Encoding encoding, EvalAlgorithm algorithm, CompareOp op,
                      int64_t v, const EvalStats& measured) {
  QueryAudit audit;
  audit.op = op;
  audit.v = v;
  audit.measured = measured;
  audit.predicted = PredictStats(base, cardinality, encoding, algorithm, op, v);
  return audit;
}

std::string QueryAudit::ToText() const {
  std::ostringstream out;
  out << "A " << ToString(op) << " " << v << ": scans " << measured.bitmap_scans
      << "/" << predicted.bitmap_scans << " (measured/model)";
  if (measured.buffer_hits > 0) out << ", hits " << measured.buffer_hits;
  out << ", ops " << measured.TotalOps() << "/" << predicted.TotalOps()
      << (ok() ? " [ok]" : " [DRIFT]");
  return out.str();
}

AuditReport AuditSource(const BitmapSource& source, EvalAlgorithm algorithm) {
  AuditReport report;
  const uint32_t c = source.cardinality();
  const BaseSequence& base = source.base();
  const Encoding encoding = source.encoding();
  if (algorithm == EvalAlgorithm::kAuto) {
    algorithm = encoding == Encoding::kRange ? EvalAlgorithm::kRangeEvalOpt
                                             : EvalAlgorithm::kEqualityEval;
  }
  int64_t total_logical_fetches = 0;
  for (CompareOp op : kAllCompareOps) {
    for (uint32_t v = 0; v < c; ++v) {
      EvalStats measured;
      EvaluatePredicate(source, algorithm, op, static_cast<int64_t>(v),
                        &measured);
      QueryAudit audit = AuditQuery(base, c, encoding, algorithm, op,
                                    static_cast<int64_t>(v), measured);
      ++report.queries_checked;
      total_logical_fetches += measured.bitmap_scans + measured.buffer_hits;
      int64_t scan_drift = std::abs(audit.scan_drift());
      int64_t op_drift = std::abs(audit.op_drift());
      if (!audit.ok()) {
        ++report.queries_failed;
        if (report.failures.size() < AuditReport::kMaxFailuresKept) {
          report.failures.push_back(audit);
        }
      }
      if (scan_drift > report.max_abs_scan_drift) {
        report.max_abs_scan_drift = scan_drift;
      }
      if (op_drift > report.max_abs_op_drift) {
        report.max_abs_op_drift = op_drift;
      }
    }
  }
  if (report.queries_checked > 0) {
    report.measured_mean_scans = static_cast<double>(total_logical_fetches) /
                                 static_cast<double>(report.queries_checked);
  }
  report.expected_mean_scans = ExactTime(base, c, encoding, algorithm);
  return report;
}

std::string AuditReport::ToText() const {
  std::ostringstream out;
  out << "cost-model audit: " << queries_checked << " queries, "
      << queries_failed << " drifted (max |scan drift| " << max_abs_scan_drift
      << ", max |op drift| " << max_abs_op_drift << ")\n"
      << "mean scans/query: measured " << measured_mean_scans << ", model "
      << expected_mean_scans << "\n";
  for (const QueryAudit& f : failures) out << "  " << f.ToText() << "\n";
  return out.str();
}

std::string AuditReport::ToJson() const {
  std::ostringstream out;
  out << "{\"queries_checked\":" << queries_checked
      << ",\"queries_failed\":" << queries_failed
      << ",\"max_abs_scan_drift\":" << max_abs_scan_drift
      << ",\"max_abs_op_drift\":" << max_abs_op_drift
      << ",\"measured_mean_scans\":" << measured_mean_scans
      << ",\"expected_mean_scans\":" << expected_mean_scans
      << ",\"ok\":" << (ok() ? "true" : "false") << "}";
  return out.str();
}

}  // namespace bix::obs
