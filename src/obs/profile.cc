#include "obs/profile.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <mutex>
#include <sstream>

#include "obs/metrics.h"

namespace bix::obs {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Thread-local current span, validated against the session epoch so a
// handle surviving across Enable() calls can never dangle into a cleared
// tree.
struct TlsState {
  ProfNode* node = nullptr;
  uint64_t epoch = 0;
};
thread_local TlsState tls;

std::string FormatNs(int64_t ns) {
  char buf[32];
  if (ns >= 1000000000) {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
  }
  return buf;
}

}  // namespace

const char* ToShortString(ProfCounter c) {
  switch (c) {
    case ProfCounter::kBitmapScans: return "scans";
    case ProfCounter::kBytesRead: return "bytes";
    case ProfCounter::kBufferHits: return "hits";
    case ProfCounter::kAndOps: return "and";
    case ProfCounter::kOrOps: return "or";
    case ProfCounter::kXorOps: return "xor";
    case ProfCounter::kNotOps: return "not";
    case ProfCounter::kWahCompressedOps: return "wah_c";
    case ProfCounter::kWahPlainOps: return "wah_p";
    case ProfCounter::kHeapEvents: return "heap";
    case ProfCounter::kDenseFallbacks: return "fallback";
    case ProfCounter::kNumCounters: break;
  }
  return "?";
}

struct ProfNode {
  std::string name;
  const char* category = "";
  ProfNode* parent = nullptr;
  std::vector<ProfNode*> children;  // guarded by Profiler::Impl::mu
  std::atomic<int64_t> calls{0};
  std::atomic<int64_t> wall_ns{0};
  std::array<std::atomic<int64_t>, kNumProfCounters> counters{};
};

struct Profiler::Impl {
  std::mutex mu;
  std::deque<ProfNode> arena;  // stable addresses; cleared per session
  ProfNode* root = nullptr;
  std::atomic<uint64_t> epoch{0};
};

std::atomic<bool> Profiler::enabled_{false};

Profiler::Profiler() : impl_(new Impl()) {}

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();
  return *profiler;
}

void Profiler::Enable() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->arena.clear();
  impl_->arena.emplace_back();
  impl_->root = &impl_->arena.back();
  impl_->root->name = "query";
  impl_->root->category = "profile";
  impl_->epoch.fetch_add(1, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void Profiler::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

ProfHandle Profiler::CurrentHandle() {
  if (!enabled()) return {};
  Profiler& p = Global();
  uint64_t epoch = p.impl_->epoch.load(std::memory_order_relaxed);
  ProfNode* node = (tls.epoch == epoch) ? tls.node : nullptr;
  if (node == nullptr) node = p.impl_->root;
  return {node, epoch};
}

void Profiler::CountSlow(ProfCounter c, int64_t delta) {
  Profiler& p = Global();
  uint64_t epoch = p.impl_->epoch.load(std::memory_order_relaxed);
  ProfNode* node = (tls.epoch == epoch) ? tls.node : nullptr;
  if (node == nullptr) node = p.impl_->root;
  if (node == nullptr) return;
  node->counters[static_cast<size_t>(c)].fetch_add(delta,
                                                   std::memory_order_relaxed);
}

ProfNode* Profiler::FindOrCreateChild(ProfNode* parent, const char* category,
                                      std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (ProfNode* child : parent->children) {
    if (child->name == name) return child;
  }
  impl_->arena.emplace_back();
  ProfNode* child = &impl_->arena.back();
  child->name = std::string(name);
  child->category = category;
  child->parent = parent;
  parent->children.push_back(child);
  return child;
}

ProfNode* Profiler::EnterSpan(const char* category, std::string_view name,
                              ProfHandle* prev) {
  uint64_t epoch = impl_->epoch.load(std::memory_order_relaxed);
  ProfNode* parent = (tls.epoch == epoch) ? tls.node : nullptr;
  if (parent == nullptr) parent = impl_->root;
  if (parent == nullptr) return nullptr;
  ProfNode* node = FindOrCreateChild(parent, category, name);
  *prev = {tls.node, tls.epoch};
  tls = {node, epoch};
  return node;
}

void Profiler::ExitSpan(ProfNode* node, int64_t wall_ns,
                        const ProfHandle& prev) {
  node->calls.fetch_add(1, std::memory_order_relaxed);
  node->wall_ns.fetch_add(wall_ns, std::memory_order_relaxed);
  tls = {prev.node, prev.epoch};
}

ProfSpan::ProfSpan(const char* category, std::string_view name) {
  if (!Profiler::enabled()) return;
  node_ = Profiler::Global().EnterSpan(category, name, &prev_);
  start_ns_ = SteadyNowNs();
}

ProfSpan::~ProfSpan() {
  if (node_ == nullptr) return;
  Profiler::Global().ExitSpan(node_, SteadyNowNs() - start_ns_, prev_);
}

ProfAdopt::ProfAdopt(const ProfHandle& handle) {
  if (handle.node == nullptr || !Profiler::enabled()) return;
  Profiler& p = Profiler::Global();
  if (handle.epoch != p.impl_->epoch.load(std::memory_order_relaxed)) return;
  adopted_ = true;
  prev_ = {tls.node, tls.epoch};
  tls = {handle.node, handle.epoch};
}

ProfAdopt::~ProfAdopt() {
  if (adopted_) tls = {prev_.node, prev_.epoch};
}

int64_t ProfSample::InclusiveCounter(ProfCounter c) const {
  int64_t total = counters[static_cast<size_t>(c)];
  for (const ProfSample& child : children) {
    total += child.InclusiveCounter(c);
  }
  return total;
}

int64_t ProfSample::InclusiveWallNs() const {
  int64_t child_sum = 0;
  for (const ProfSample& child : children) {
    child_sum += child.InclusiveWallNs();
  }
  return std::max(wall_ns, child_sum);
}

int64_t ProfSample::SelfWallNs() const {
  int64_t child_sum = 0;
  for (const ProfSample& child : children) {
    child_sum += child.InclusiveWallNs();
  }
  return std::max<int64_t>(0, InclusiveWallNs() - child_sum);
}

namespace {

ProfSample SnapshotNode(const ProfNode& node) {
  ProfSample s;
  s.name = node.name;
  s.category = node.category;
  s.calls = node.calls.load(std::memory_order_relaxed);
  s.wall_ns = node.wall_ns.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumProfCounters; ++i) {
    s.counters[static_cast<size_t>(i)] =
        node.counters[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  for (const ProfNode* child : node.children) {
    s.children.push_back(SnapshotNode(*child));
  }
  return s;
}

void AppendTextNode(const ProfSample& node, int depth, std::ostringstream& out) {
  std::string label(static_cast<size_t>(2 * depth), ' ');
  label += node.name;
  out << label;
  for (size_t pad = label.size(); pad < 40; ++pad) out << ' ';
  out << " " << FormatNs(node.InclusiveWallNs());
  if (node.calls > 1) out << "  calls=" << node.calls;
  for (int i = 0; i < kNumProfCounters; ++i) {
    ProfCounter c = static_cast<ProfCounter>(i);
    int64_t v = node.InclusiveCounter(c);
    if (v != 0) out << "  " << ToShortString(c) << "=" << v;
  }
  out << "\n";
  for (const ProfSample& child : node.children) {
    AppendTextNode(child, depth + 1, out);
  }
}

std::string CollapsedFrame(const std::string& name) {
  std::string frame = name;
  for (char& c : frame) {
    if (c == ';' || c == ' ' || c == '\t' || c == '\n') c = '_';
  }
  if (frame.empty()) frame = "_";
  return frame;
}

void AppendCollapsedNode(const ProfSample& node, const std::string& prefix,
                         std::ostringstream& out) {
  std::string stack =
      prefix.empty() ? CollapsedFrame(node.name)
                     : prefix + ";" + CollapsedFrame(node.name);
  int64_t self = node.SelfWallNs();
  if (self > 0) out << stack << " " << self << "\n";
  for (const ProfSample& child : node.children) {
    AppendCollapsedNode(child, stack, out);
  }
}

}  // namespace

std::string QueryProfile::ToText() const {
  std::ostringstream out;
  AppendTextNode(root, 0, out);
  return out.str();
}

std::string QueryProfile::ToCollapsed() const {
  std::ostringstream out;
  AppendCollapsedNode(root, "", out);
  return out.str();
}

QueryProfile CaptureProfile() {
  Profiler& p = Profiler::Global();
  Profiler::Impl* impl = p.impl_;
  std::lock_guard<std::mutex> lock(impl->mu);
  QueryProfile profile;
  if (impl->root != nullptr) profile.root = SnapshotNode(*impl->root);
  return profile;
}

void ObserveQueryProfile(const QueryProfile& profile) {
  auto& reg = MetricsRegistry::Global();
  static Histogram& wall = reg.GetHistogram("profile.query_wall_ns");
  static Histogram& scans = reg.GetHistogram("profile.query_bitmap_scans");
  wall.Observe(profile.root.InclusiveWallNs());
  scans.Observe(profile.root.InclusiveCounter(ProfCounter::kBitmapScans));
}

}  // namespace bix::obs
