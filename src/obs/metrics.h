// Process-wide metrics registry (counters, gauges, histograms).
//
// The paper's evaluation discipline is counting — bitmap scans as the I/O
// proxy, bitmap operations as the CPU proxy — but EvalStats only carries
// counts for a single evaluation and is aggregated away by its caller.
// The registry keeps named, process-lifetime aggregates with thread-safe
// updates so any layer (eval, storage, buffer, planner, tools) can account
// work without threading extra out-parameters through the stack.
//
// Metric kinds:
//  * Counter   — monotonically increasing int64 (e.g. "eval.bitmap_scans").
//  * Gauge     — last-set int64 (e.g. "index.stored_bytes").
//  * Histogram — log2-bucketed distribution of non-negative values
//                (latencies in nanoseconds, sizes in bytes).  Bucket k
//                holds values in [2^(k-1), 2^k) with bucket 0 = {0};
//                64 buckets cover the full int64 range.
//
// All mutation paths are lock-free atomics; registration takes a mutex
// once per metric name.  Snapshots are deterministic: metrics are reported
// in lexicographic name order, so text/JSON exports diff cleanly.

#ifndef BIX_OBS_METRICS_H_
#define BIX_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bix::obs {

class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-scale histogram over non-negative int64 values.  Negative
/// observations clamp to bucket 0.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  /// Bucket index for `value`: 0 for values <= 0, else 1 + floor(log2(v)),
  /// capped at kNumBuckets - 1.
  static int BucketIndex(int64_t value);
  /// Inclusive upper bound of bucket `k` (the largest value it admits).
  static int64_t BucketUpperBound(int k);

  void Observe(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t min() const;  // 0 when empty
  int64_t max() const;  // 0 when empty
  int64_t bucket(int k) const {
    return buckets_[static_cast<size_t>(k)].load(std::memory_order_relaxed);
  }

  /// Value at or below which `q` (in [0, 1]) of observations fall,
  /// estimated as the upper bound of the containing bucket.
  int64_t Quantile(double q) const;

  /// Like Quantile, but linearly interpolated by rank position within the
  /// containing bucket's value range and clamped to the observed
  /// [min(), max()] — exact for single-value histograms, far tighter than
  /// the bucket upper bound for wide (high) buckets.
  int64_t QuantileInterpolated(double q) const;

  void Reset();

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{INT64_MIN};
};

/// One metric's state at snapshot time.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  int64_t value = 0;  // counter/gauge value; histogram count
  // Histogram-only fields.
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  int64_t p50 = 0;
  int64_t p95 = 0;
  int64_t p99 = 0;
  std::vector<std::pair<int64_t, int64_t>> buckets;  // (upper_bound, count)
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  // lexicographic by name

  /// Human-readable table, one metric per line.
  std::string ToText() const;
  /// JSON object {"name": value | {histogram object}} in name order.
  std::string ToJson() const;
  /// Prometheus text exposition format: names sanitized to
  /// [a-zA-Z0-9_:] and prefixed "bix_"; histograms export cumulative
  /// le-buckets plus _sum and _count.
  std::string ToPrometheus() const;
  /// Sample lookup by exact name; nullptr if absent.
  const MetricSample* Find(const std::string& name) const;
};

/// Named-metric registry.  Get*() registers on first use and returns a
/// stable reference; the returned metric lives as long as the registry.
/// Re-registering a name with a different kind aborts.
class MetricsRegistry {
 public:
  /// The process-wide registry used by the library's instrumentation.
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every registered metric (registration survives).
  void ResetAll();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& GetEntry(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;
};

}  // namespace bix::obs

#endif  // BIX_OBS_METRICS_H_
