// Hierarchical per-query profiler.
//
// The registry (obs/metrics.h) answers "how much work did the process do";
// the tracer (obs/trace.h) answers "when did each event happen".  Neither
// answers the question the paper's cost model keeps asking: *which plan
// node* paid for the scans and bitwise operations of one evaluation.  The
// profiler does: RAII spans (ProfSpan) form a tree per query — plan node →
// engine stage → kernel/fetch — and every instrumented counter increment
// (ProfCount) lands on the span that was live on the incrementing thread.
//
// Attribution rules:
//  * Spans with the same name under the same parent merge into one node,
//    so per-slot fetches collapse to per-component rows and the tree stays
//    bounded no matter how many times a stage runs.
//  * Counters are attributed to the innermost live span directly; reports
//    show inclusive values (self + descendants), so child counters sum
//    exactly to their parent by construction.
//  * Worker threads inherit the submitting span: the thread pool captures
//    CurrentHandle() at batch submission and wraps each drain in a
//    ProfAdopt, so segmented-engine and planner work attributes into the
//    owning query's node instead of vanishing.
//
// Cost discipline mirrors the tracer: disabled, every ProfCount and
// ProfSpan is one relaxed atomic load.  Enabled, counter increments are a
// thread-local read plus a relaxed atomic add; only span *creation* (first
// time a name appears under a parent) takes the profiler mutex.

#ifndef BIX_OBS_PROFILE_H_
#define BIX_OBS_PROFILE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bix::obs {

/// The attributable costs.  Every enumerator mirrors an existing
/// process-wide counter; the instrumentation site increments both.
enum class ProfCounter : int {
  kBitmapScans = 0,  // eval.bitmap_scans
  kBytesRead,        // eval.bytes_read (compressed payload bytes)
  kBufferHits,       // eval.buffer_hits
  kAndOps,           // eval.and_ops
  kOrOps,            // eval.or_ops
  kXorOps,           // eval.xor_ops
  kNotOps,           // eval.not_ops
  kWahCompressedOps, // wah_engine.compressed_ops
  kWahPlainOps,      // wah_engine.plain_ops
  kHeapEvents,       // wah_engine.heap_events
  kDenseFallbacks,   // wah_engine.dense_fallbacks
  kNumCounters,
};

inline constexpr int kNumProfCounters =
    static_cast<int>(ProfCounter::kNumCounters);

/// Short display name ("scans", "bytes", "and", ...).
const char* ToShortString(ProfCounter c);

struct ProfNode;
struct QueryProfile;

/// An opaque reference to a live span, safe to hand to another thread
/// within one Enable()/Capture() session.  A handle from a previous
/// session (epoch mismatch) adopts as a no-op.
struct ProfHandle {
  ProfNode* node = nullptr;
  uint64_t epoch = 0;
};

class Profiler {
 public:
  /// The process-wide profiler used by the library's instrumentation.
  static Profiler& Global();

  /// The *only* check on the disabled hot path (one relaxed atomic load).
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Starts a profiling session: clears any previous tree and begins
  /// attributing.  Must not be called while spans are live.
  void Enable();
  void Disable();

  /// The innermost live span on this thread (root if none); for handing to
  /// worker threads.  Null node when disabled.
  static ProfHandle CurrentHandle();

  /// Out-of-line slow path of ProfCount; call only when enabled().
  static void CountSlow(ProfCounter c, int64_t delta);

 private:
  friend class ProfSpan;
  friend class ProfAdopt;
  friend QueryProfile CaptureProfile();

  Profiler();

  // Enters a (possibly new) child span of the thread's current node and
  // makes it current; returns the node entered.  `prev` receives the state
  // to restore on exit.
  ProfNode* EnterSpan(const char* category, std::string_view name,
                      ProfHandle* prev);
  void ExitSpan(ProfNode* node, int64_t wall_ns, const ProfHandle& prev);

  ProfNode* FindOrCreateChild(ProfNode* parent, const char* category,
                              std::string_view name);

  static std::atomic<bool> enabled_;

  struct Impl;
  Impl* impl_;  // leaked singleton state (never destroyed)
};

/// RAII span.  All work is skipped when profiling was disabled at
/// construction time.  `name` is copied on the enabled path only.
class ProfSpan {
 public:
  ProfSpan(const char* category, std::string_view name);
  ~ProfSpan();
  ProfSpan(const ProfSpan&) = delete;
  ProfSpan& operator=(const ProfSpan&) = delete;

  bool active() const { return node_ != nullptr; }

 private:
  ProfNode* node_ = nullptr;
  ProfHandle prev_;
  int64_t start_ns_ = 0;
};

/// RAII adoption of another thread's span as this thread's current node.
/// Used by the thread pool so batch tasks attribute into the submitter's
/// span.  No wall time is recorded — the submitting span's clock is
/// already running.
class ProfAdopt {
 public:
  explicit ProfAdopt(const ProfHandle& handle);
  ~ProfAdopt();
  ProfAdopt(const ProfAdopt&) = delete;
  ProfAdopt& operator=(const ProfAdopt&) = delete;

 private:
  bool adopted_ = false;
  ProfHandle prev_;
};

/// Attributes `delta` of counter `c` to the innermost live span on this
/// thread.  Disabled cost: one relaxed atomic load.
inline void ProfCount(ProfCounter c, int64_t delta = 1) {
  if (!Profiler::enabled()) return;
  Profiler::CountSlow(c, delta);
}

/// One node of a captured profile: direct (self-attributed) values plus
/// children.  Inclusive accessors aggregate the subtree.
struct ProfSample {
  std::string name;
  std::string category;
  int64_t calls = 0;     // span entries that landed on this node
  int64_t wall_ns = 0;   // summed span wall time (overlaps under threads)
  std::array<int64_t, kNumProfCounters> counters{};  // self-attributed
  std::vector<ProfSample> children;

  int64_t InclusiveCounter(ProfCounter c) const;
  int64_t InclusiveWallNs() const;  // max(own wall, sum of children)
  /// Wall time not covered by children (floor 0).
  int64_t SelfWallNs() const;
};

/// A captured span tree.
struct QueryProfile {
  ProfSample root;

  /// Annotated tree: one row per node with inclusive wall time and every
  /// nonzero inclusive counter.
  std::string ToText() const;

  /// flamegraph.pl collapsed-stack format: `frame;frame;frame count`, one
  /// line per node with nonzero self wall time (count = self nanoseconds).
  /// Frame names have `;` and whitespace replaced by `_`.
  std::string ToCollapsed() const;
};

/// Snapshot of the current session's tree (callable while enabled; nodes
/// are read with relaxed atomics).
QueryProfile CaptureProfile();

/// Folds one captured query profile into the process-wide registry
/// histograms (profile.query_wall_ns, profile.query_bitmap_scans), the
/// percentile feed for the future concurrent query service.
void ObserveQueryProfile(const QueryProfile& profile);

}  // namespace bix::obs

#endif  // BIX_OBS_PROFILE_H_
