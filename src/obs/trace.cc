#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace bix::obs {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendEscaped(std::ostringstream& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

std::atomic<bool> Tracer::enabled_{false};

int64_t Tracer::CurrentThreadId() {
  static std::atomic<int64_t> next_tid{0};
  thread_local int64_t tid = next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  epoch_ns_ = SteadyNowNs();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

int64_t Tracer::NowNs() const { return SteadyNowNs() - epoch_ns_; }

void Tracer::Record(TraceEvent event) {
  if (event.tid < 0) event.tid = CurrentThreadId();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string Tracer::ToChromeJson() const {
  std::vector<TraceEvent> events = Events();
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  // Name each thread row: tid 0 is the first recording thread (main in
  // every tool and test), workers keep their stable ids, so one worker's
  // spans nest on one row inside the owning query's time range.
  std::vector<int64_t> tids;
  for (const TraceEvent& e : events) {
    int64_t tid = e.tid < 0 ? 0 : e.tid;
    if (std::find(tids.begin(), tids.end(), tid) == tids.end()) {
      tids.push_back(tid);
    }
  }
  std::sort(tids.begin(), tids.end());
  for (int64_t tid : tids) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
        << ",\"args\":{\"name\":\""
        << (tid == 0 ? "main" : "worker-" + std::to_string(tid)) << "\"}}";
  }
  for (const TraceEvent& e : events) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"";
    AppendEscaped(out, e.name);
    out << "\",\"cat\":\"";
    AppendEscaped(out, e.category);
    // chrome://tracing expects microsecond timestamps; keep nanosecond
    // resolution with fractional microseconds.
    out << "\",\"pid\":0,\"tid\":" << (e.tid < 0 ? 0 : e.tid)
        << ",\"ts\":" << static_cast<double>(e.ts_ns) / 1000.0;
    if (e.dur_ns >= 0) {
      out << ",\"ph\":\"X\",\"dur\":" << static_cast<double>(e.dur_ns) / 1000.0;
    } else {
      out << ",\"ph\":\"i\",\"s\":\"t\"";
    }
    out << ",\"args\":{";
    bool first_arg = true;
    auto arg = [&](const char* key, int64_t v) {
      if (v < 0) return;
      if (!first_arg) out << ",";
      first_arg = false;
      out << "\"" << key << "\":" << v;
    };
    arg("component", e.component);
    arg("slot", e.slot);
    arg("bytes", e.bytes);
    arg("value", e.value);
    arg("hit", e.hit);
    if (!e.detail.empty()) {
      if (!first_arg) out << ",";
      first_arg = false;
      out << "\"detail\":\"";
      AppendEscaped(out, e.detail);
      out << "\"";
    }
    out << "}}";
  }
  out << "],\"displayTimeUnit\":\"ns\"}";
  return out.str();
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << ToChromeJson();
  return static_cast<bool>(f);
}

void RecordInstant(const char* category, const char* name) {
  TraceEvent e;
  e.category = category;
  e.name = name;
  e.ts_ns = Tracer::Global().NowNs();
  e.dur_ns = -1;
  Tracer::Global().Record(std::move(e));
}

}  // namespace bix::obs
