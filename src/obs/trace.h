// Query-level event tracing.
//
// The tracer records what EvalStats can only count: *which* bitmap was
// fetched (component, slot, bytes, buffer hit/miss, decode time), *which*
// bitwise operation ran, and where wall-clock time went inside one
// evaluation.  Events export as Chrome trace_event JSON ("Complete" and
// "Instant" events), loadable in chrome://tracing or Perfetto, and as a
// plain JSON array for programmatic consumers.
//
// Cost discipline: tracing is off by default and the disabled path is one
// relaxed atomic load (see Tracer::enabled()); instrumentation sites must
// check it before constructing events.  Enabled-path appends take a mutex —
// tracing is a diagnosis tool, not a production counter (use obs/metrics.h
// for always-on aggregates).

#ifndef BIX_OBS_TRACE_H_
#define BIX_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace bix::obs {

/// One recorded event.  `dur_ns < 0` marks an instant event (a bitwise op);
/// otherwise the event is a span.  Unused argument fields stay at -1 and
/// are omitted from exports.
struct TraceEvent {
  const char* category = "";  // "eval", "fetch", "storage", "plan"
  const char* name = "";      // static-storage strings only
  int64_t ts_ns = 0;          // start, relative to Enable()
  int64_t dur_ns = -1;
  int64_t component = -1;
  int64_t slot = -1;
  int64_t bytes = -1;
  int64_t value = -1;         // predicate constant / generic argument
  int64_t hit = -1;           // buffer hit (1) / miss (0)
  int64_t tid = -1;           // recording thread; assigned by Record()
  std::string detail;         // optional free-form annotation
};

class Tracer {
 public:
  /// The process-wide tracer used by the library's instrumentation.
  static Tracer& Global();

  /// True when events should be recorded.  This is the *only* check on the
  /// hot path; a disabled tracer costs one relaxed atomic load.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Starts recording (clears previously captured events).
  void Enable();
  void Disable();

  /// Nanoseconds since Enable() (steady clock).
  int64_t NowNs() const;

  /// Stable small id of the calling thread (0 = first recording thread,
  /// normally main).  Ids are process-lifetime: a worker keeps its id
  /// across batches, so its events line up on one Chrome trace row.
  static int64_t CurrentThreadId();

  /// Appends `event`, stamping `tid` with CurrentThreadId() when the
  /// caller left it unset.
  void Record(TraceEvent event);

  size_t size() const;
  void Clear();
  std::vector<TraceEvent> Events() const;

  /// Chrome trace_event JSON: {"traceEvents":[...]}.  Spans become "X"
  /// (Complete) events, instants become "i"; timestamps are microseconds.
  std::string ToChromeJson() const;
  /// Writes ToChromeJson() to `path`; returns false on I/O failure.
  bool WriteChromeJson(const std::string& path) const;

 private:
  static std::atomic<bool> enabled_;

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  int64_t epoch_ns_ = 0;  // steady-clock origin set by Enable()
};

/// RAII span: captures the start time at construction and records a span
/// event at destruction.  All work is skipped when tracing was disabled at
/// construction time.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name) {
    if (Tracer::enabled()) {
      active_ = true;
      event_.category = category;
      event_.name = name;
      event_.ts_ns = Tracer::Global().NowNs();
    }
  }
  ~TraceSpan() {
    if (active_) {
      event_.dur_ns = Tracer::Global().NowNs() - event_.ts_ns;
      Tracer::Global().Record(std::move(event_));
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return active_; }
  /// Argument setters are no-ops on an inactive span.
  void set_component(int64_t c) { if (active_) event_.component = c; }
  void set_slot(int64_t s) { if (active_) event_.slot = s; }
  void set_bytes(int64_t b) { if (active_) event_.bytes = b; }
  void set_value(int64_t v) { if (active_) event_.value = v; }
  void set_hit(bool h) { if (active_) event_.hit = h ? 1 : 0; }
  void set_detail(std::string d) { if (active_) event_.detail = std::move(d); }

 private:
  bool active_ = false;
  TraceEvent event_;
};

/// Records an instant event (used for bitwise ops).  Call only after
/// checking Tracer::enabled().
void RecordInstant(const char* category, const char* name);

}  // namespace bix::obs

#endif  // BIX_OBS_TRACE_H_
