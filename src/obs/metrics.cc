#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

#include "core/check.h"

namespace bix::obs {

int Histogram::BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  int k = 64 - __builtin_clzll(static_cast<uint64_t>(value));  // floor(log2)+1
  return std::min(k, kNumBuckets - 1);
}

int64_t Histogram::BucketUpperBound(int k) {
  if (k <= 0) return 0;
  if (k >= kNumBuckets - 1) return INT64_MAX;
  return (int64_t{1} << k) - 1;
}

void Histogram::Observe(int64_t value) {
  buckets_[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t prev = min_.load(std::memory_order_relaxed);
  while (value < prev &&
         !min_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
  prev = max_.load(std::memory_order_relaxed);
  while (value > prev &&
         !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

int64_t Histogram::min() const {
  int64_t v = min_.load(std::memory_order_relaxed);
  return v == INT64_MAX ? 0 : v;
}

int64_t Histogram::max() const {
  int64_t v = max_.load(std::memory_order_relaxed);
  return v == INT64_MIN ? 0 : v;
}

int64_t Histogram::Quantile(double q) const {
  int64_t total = count();
  if (total == 0) return 0;
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(total - 1));
  int64_t seen = 0;
  for (int k = 0; k < kNumBuckets; ++k) {
    seen += bucket(k);
    if (seen > rank) return BucketUpperBound(k);
  }
  return BucketUpperBound(kNumBuckets - 1);
}

int64_t Histogram::QuantileInterpolated(double q) const {
  int64_t total = count();
  if (total == 0) return 0;
  // The extreme quantiles are observed directly — no need to interpolate.
  if (q <= 0.0) return min();
  if (q >= 1.0) return max();
  double rank = q * static_cast<double>(total - 1);
  int64_t seen = 0;
  for (int k = 0; k < kNumBuckets; ++k) {
    int64_t c = bucket(k);
    if (c == 0) continue;
    if (static_cast<double>(seen + c) > rank) {
      // Rank falls in this bucket; treat the bucket's c observations as
      // evenly spread over its value range and read off the position.
      double pos = (rank - static_cast<double>(seen) + 0.5) /
                   static_cast<double>(c);
      int64_t lo = (k == 0) ? 0 : (int64_t{1} << (k - 1));
      int64_t hi = BucketUpperBound(k);
      double est = static_cast<double>(lo) +
                   pos * static_cast<double>(hi - lo);
      int64_t v = (est >= static_cast<double>(INT64_MAX))
                      ? INT64_MAX
                      : static_cast<int64_t>(est + 0.5);
      // Clamp to both the bucket range and the observed extremes: exact
      // for single-value histograms and never outside real data.
      v = std::max(v, lo);
      v = std::min(v, hi);
      v = std::max(v, min());
      v = std::min(v, max());
      return v;
    }
    seen += c;
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::GetEntry(const std::string& name,
                                                  Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
    it = metrics_.emplace(name, std::move(entry)).first;
  }
  BIX_CHECK_MSG(it->second.kind == kind,
                "metric re-registered with a different kind");
  return it->second;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  return *GetEntry(name, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  return *GetEntry(name, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  return *GetEntry(name, Kind::kHistogram).histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : metrics_) {  // std::map: name order
    MetricSample s;
    s.name = name;
    switch (entry.kind) {
      case Kind::kCounter:
        s.kind = MetricSample::Kind::kCounter;
        s.value = entry.counter->value();
        break;
      case Kind::kGauge:
        s.kind = MetricSample::Kind::kGauge;
        s.value = entry.gauge->value();
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        s.kind = MetricSample::Kind::kHistogram;
        s.value = h.count();
        s.sum = h.sum();
        s.min = h.min();
        s.max = h.max();
        s.p50 = h.QuantileInterpolated(0.5);
        s.p95 = h.QuantileInterpolated(0.95);
        s.p99 = h.QuantileInterpolated(0.99);
        for (int k = 0; k < Histogram::kNumBuckets; ++k) {
          int64_t c = h.bucket(k);
          if (c != 0) s.buckets.emplace_back(Histogram::BucketUpperBound(k), c);
        }
        break;
      }
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->Reset();
        break;
      case Kind::kGauge:
        entry.gauge->Reset();
        break;
      case Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

const MetricSample* MetricsSnapshot::Find(const std::string& name) const {
  for (const MetricSample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToText() const {
  std::ostringstream out;
  for (const MetricSample& s : samples) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
      case MetricSample::Kind::kGauge:
        out << s.name << " " << s.value << "\n";
        break;
      case MetricSample::Kind::kHistogram:
        out << s.name << " count=" << s.value << " sum=" << s.sum
            << " min=" << s.min << " p50<=" << s.p50 << " p95<=" << s.p95
            << " p99<=" << s.p99 << " max=" << s.max << "\n";
        break;
    }
  }
  return out.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) out << ",";
    first = false;
    out << "\"" << s.name << "\":";
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
      case MetricSample::Kind::kGauge:
        out << s.value;
        break;
      case MetricSample::Kind::kHistogram: {
        out << "{\"count\":" << s.value << ",\"sum\":" << s.sum
            << ",\"min\":" << s.min << ",\"max\":" << s.max
            << ",\"p50\":" << s.p50 << ",\"p95\":" << s.p95
            << ",\"p99\":" << s.p99 << ",\"buckets\":[";
        bool bfirst = true;
        for (const auto& [ub, c] : s.buckets) {
          if (!bfirst) out << ",";
          bfirst = false;
          out << "[" << ub << "," << c << "]";
        }
        out << "]}";
        break;
      }
    }
  }
  out << "}";
  return out.str();
}

std::string MetricsSnapshot::ToPrometheus() const {
  auto sanitized = [](const std::string& name) {
    std::string out = "bix_";
    for (char c : name) {
      bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '_' || c == ':';
      out += ok ? c : '_';
    }
    return out;
  };
  std::ostringstream out;
  for (const MetricSample& s : samples) {
    std::string name = sanitized(s.name);
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        out << "# TYPE " << name << " counter\n"
            << name << " " << s.value << "\n";
        break;
      case MetricSample::Kind::kGauge:
        out << "# TYPE " << name << " gauge\n"
            << name << " " << s.value << "\n";
        break;
      case MetricSample::Kind::kHistogram: {
        out << "# TYPE " << name << " histogram\n";
        int64_t cumulative = 0;
        for (const auto& [ub, c] : s.buckets) {
          cumulative += c;
          out << name << "_bucket{le=\"";
          if (ub == INT64_MAX) {
            out << "+Inf";
          } else {
            out << ub;
          }
          out << "\"} " << cumulative << "\n";
        }
        if (s.buckets.empty() || s.buckets.back().first != INT64_MAX) {
          out << name << "_bucket{le=\"+Inf\"} " << s.value << "\n";
        }
        out << name << "_sum " << s.sum << "\n"
            << name << "_count " << s.value << "\n";
        break;
      }
    }
  }
  return out.str();
}

}  // namespace bix::obs
