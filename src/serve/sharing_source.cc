#include "serve/sharing_source.h"

#include <utility>

#include "obs/profile.h"

namespace bix::serve {

namespace {

// One logical operand access, hit or miss — the same single scan the
// unshared path counts.
void CountScan(EvalStats* stats) {
  if (stats != nullptr) {
    ++stats->bitmap_scans;
    obs::ProfCount(obs::ProfCounter::kBitmapScans);
  }
}

}  // namespace

SharingSource::SharingSource(QuerySource* inner, OperandCache* cache,
                             uint32_t column, bool wah_direct,
                             EvalStats* stats)
    : inner_(inner),
      cache_(cache),
      column_(column),
      wah_direct_(wah_direct),
      query_stats_(stats) {}

const Status& SharingSource::status() const {
  if (!status_.ok()) return status_;
  return inner_->status();
}

std::shared_ptr<const CachedOperand> SharingSource::GetOperand(
    int component, uint32_t slot, OperandKey::Kind kind) const {
  OperandKey key;
  key.column = column_;
  key.component = component;
  key.slot = slot;
  key.kind = kind;

  bool hit = false;
  auto operand = cache_->GetOrFetch(
      key,
      [&](CachedOperand* out) {
        // Meter this fetch's payload via the query-stats delta (the inner
        // source charges bytes there as it reads).
        const int64_t bytes_before =
            query_stats_ != nullptr ? query_stats_->bytes_read : 0;
        const bool degraded_before = inner_->degraded();
        if (kind == OperandKey::Kind::kWah) {
          const WahBitvector* wah = inner_->FetchWah(component, slot, nullptr);
          if (wah == nullptr) {
            // No compressed payload (or it failed verification): not an
            // error — the caller falls back to the dense kind.
            out->status = Status::NotFound("no wah payload");
            return;
          }
          out->wah = *wah;
        } else {
          Status before = inner_->status();
          out->dense = inner_->Fetch(component, slot, nullptr);
          if (before.ok() && !inner_->status().ok()) {
            out->status = inner_->status();
            return;
          }
        }
        out->payload_bytes =
            (query_stats_ != nullptr ? query_stats_->bytes_read : 0) -
            bytes_before;
        if (!degraded_before && inner_->degraded()) out->degraded = true;
      },
      &hit);

  if (hit) {
    ++shared_hits_;
    if (operand->degraded) degraded_ = true;
    if (!operand->status.ok() && status_.ok() &&
        operand->status.code() != Status::Code::kNotFound) {
      status_ = operand->status;
    }
  }
  return operand;
}

Bitvector SharingSource::Fetch(int component, uint32_t slot,
                               EvalStats* stats) const {
  // A query that already failed bypasses the cache: its fetches return
  // empty bitmaps by contract and must not pollute shared entries.
  if (!inner_->status().ok()) return inner_->Fetch(component, slot, stats);
  // The unshared path counts the scan before attempting the read; mirror
  // that so failed queries report identical scan counts.
  CountScan(stats);
  auto operand = GetOperand(component, slot, OperandKey::Kind::kDense);
  if (!operand->status.ok()) return Bitvector::Zeros(num_records());
  return operand->dense;
}

const Bitvector* SharingSource::FetchView(int component, uint32_t slot,
                                          EvalStats* stats) const {
  if (!inner_->status().ok()) return nullptr;
  auto operand = GetOperand(component, slot, OperandKey::Kind::kDense);
  if (!operand->status.ok()) {
    // Per the FetchView contract nothing was counted; the caller falls
    // back to Fetch(), which counts the scan and surfaces the failure.
    return nullptr;
  }
  CountScan(stats);
  const Bitvector* view = &operand->dense;
  pinned_.push_back(std::move(operand));
  return view;
}

const WahBitvector* SharingSource::FetchWah(int component, uint32_t slot,
                                            EvalStats* stats) const {
  if (!wah_direct_) return nullptr;
  if (!inner_->status().ok()) return nullptr;
  auto operand = GetOperand(component, slot, OperandKey::Kind::kWah);
  if (!operand->status.ok()) return nullptr;
  CountScan(stats);
  const WahBitvector* view = &operand->wah;
  pinned_.push_back(std::move(operand));
  return view;
}

}  // namespace bix::serve
