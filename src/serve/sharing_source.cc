#include "serve/sharing_source.h"

#include <utility>
#include <vector>

#include "core/eval.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "storage/async_env.h"

namespace bix::serve {

namespace {

// One logical operand access, hit or miss — the same single scan the
// unshared path counts.
void CountScan(EvalStats* stats) {
  if (stats != nullptr) {
    ++stats->bitmap_scans;
    obs::ProfCount(obs::ProfCounter::kBitmapScans);
  }
}

// Runs on an I/O thread: materializes one operand from `index` and
// publishes it through the flight's pending entry — the cache's existing
// mutex/condvar rendezvous wakes every Await.  Mirrors the synchronous
// fetch callback in GetOperand exactly: wah failures map to kNotFound so
// consumers fall back to the dense kind, dense failures surface typed and
// the publish evicts the entry for retry.  Captures only borrowed service
// state (index, cache) and the flight — never a SharingSource.
void RunFetchJob(const StoredIndex* index, OperandCache* cache,
                 OperandCache::Flight flight, const OperandKey& key) {
  CachedOperand out;
  FetchedOperand fetched;
  Status s = index->FetchBitmapOperand(
      key.component, key.slot, key.kind == OperandKey::Kind::kWah, &fetched);
  if (!s.ok() && s.code() != Status::Code::kNotFound) {
    IoErrorCounter().Increment();
  }
  if (key.kind == OperandKey::Kind::kWah) {
    if (s.ok()) {
      out.wah = std::move(fetched.wah);
    } else {
      // No compressed payload (or it failed verification): not an error —
      // the consumer falls back to the dense kind, which re-reads with
      // full recovery.
      out.status = Status::NotFound("no wah payload");
    }
  } else {
    if (s.ok()) {
      out.dense = std::move(fetched.dense);
    } else {
      out.status = std::move(s);
    }
  }
  out.payload_bytes = fetched.payload_bytes;
  out.degraded = fetched.degraded;
  cache->Publish(flight, std::move(out));
}

// Records which (component, slot) operands an evaluation touches without
// reading anything: every fetch returns the same all-zeros bitmap.  The
// slot pattern of the paper's algorithms depends only on (encoding, base,
// op, v) — never on bitmap contents — so replaying the predicate over this
// source enumerates exactly the fetches the real evaluation will issue.
// Counts nothing (callers pass no stats); a misprediction costs one unused
// read, never a wrong result.
class ProbeSource final : public BitmapSource {
 public:
  explicit ProbeSource(const BitmapSource& meta)
      : meta_(meta), zeros_(Bitvector::Zeros(meta.num_records())) {}

  const BaseSequence& base() const override { return meta_.base(); }
  Encoding encoding() const override { return meta_.encoding(); }
  size_t num_records() const override { return meta_.num_records(); }
  uint32_t cardinality() const override { return meta_.cardinality(); }
  const Bitvector& non_null() const override { return meta_.non_null(); }

  Bitvector Fetch(int component, uint32_t slot,
                  EvalStats* /*stats*/) const override {
    Record(component, slot);
    return zeros_;
  }
  const Bitvector* FetchView(int component, uint32_t slot,
                             EvalStats* /*stats*/) const override {
    Record(component, slot);
    return &zeros_;
  }

  /// Distinct operands in first-touch order.
  const std::vector<std::pair<int, uint32_t>>& touched() const {
    return touched_;
  }

 private:
  void Record(int component, uint32_t slot) const {
    for (const auto& t : touched_) {
      if (t.first == component && t.second == slot) return;
    }
    touched_.emplace_back(component, slot);
  }

  const BitmapSource& meta_;
  Bitvector zeros_;
  mutable std::vector<std::pair<int, uint32_t>> touched_;
};

}  // namespace

std::shared_ptr<const PrefetchPlanner::Plan> PrefetchPlanner::Get(
    const BitmapSource& meta, uint32_t column, CompareOp op, int64_t v) {
  const Key key{column, op, v};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(key);
    if (it != plans_.end()) return it->second;
  }
  // Probe outside the lock; a concurrent duplicate probe is harmless (the
  // result is deterministic) and the first insert wins.
  ProbeSource probe(meta);
  EvaluatePredicate(probe, EvalAlgorithm::kAuto, op, v, nullptr);
  auto plan = std::make_shared<const Plan>(probe.touched());
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.emplace(key, std::move(plan)).first->second;
}

SharingSource::SharingSource(QuerySource* inner, OperandCache* cache,
                             uint32_t column, bool wah_direct,
                             EvalStats* stats, const StoredIndex* stored,
                             IoExecutor* io, PrefetchPlanner* planner,
                             uint32_t epoch)
    : inner_(inner),
      cache_(cache),
      column_(column),
      epoch_(epoch),
      wah_direct_(wah_direct),
      query_stats_(stats),
      stored_(stored),
      io_(io),
      planner_(planner) {}

const Status& SharingSource::status() const {
  if (!status_.ok()) return status_;
  return inner_->status();
}

void SharingSource::SubmitFetch(OperandCache::Flight flight,
                                const OperandKey& key) const {
  const StoredIndex* index = stored_;
  OperandCache* cache = cache_;
  io_->Submit([index, cache, flight = std::move(flight), key]() mutable {
    RunFetchJob(index, cache, std::move(flight), key);
  });
}

void SharingSource::Prefetch(CompareOp op, int64_t v,
                             OperandKey::Kind kind) const {
  if (io_ == nullptr || stored_ == nullptr) return;
  if (!inner_->status().ok()) return;
  std::shared_ptr<const PrefetchPlanner::Plan> plan;
  if (planner_ != nullptr) {
    plan = planner_->Get(*inner_, column_, op, v);
  } else {
    ProbeSource probe(*inner_);
    EvaluatePredicate(probe, EvalAlgorithm::kAuto, op, v, nullptr);
    plan = std::make_shared<const PrefetchPlanner::Plan>(probe.touched());
  }
  for (const auto& [component, slot] : *plan) {
    OperandKey key;
    key.column = column_;
    key.component = component;
    key.slot = slot;
    key.epoch = epoch_;
    key.kind = kind;
    OperandCache::Flight flight = cache_->Begin(key);
    // Warm, or already in flight (ours or another query's): nothing to
    // submit.  Consumption decides hit-vs-self below.
    if (!flight.owner()) continue;
    OperandCache::SharedMissCounter().Increment();
    prefetched_.insert(key);
    SubmitFetch(std::move(flight), key);
  }
}

std::shared_ptr<const CachedOperand> SharingSource::GetOperandAsync(
    const OperandKey& key) const {
  // A prefetched key is this query's own fetch arriving: its miss was
  // counted at submission, and consuming it is not a shared hit.
  bool initiated = prefetched_.erase(key) > 0;
  OperandCache::Flight flight = cache_->Begin(key);
  if (flight.owner()) {
    // Cold despite any prefetch (not predicted, or published-failed and
    // evicted): same single-flight discipline, fetch still runs off-lane.
    OperandCache::SharedMissCounter().Increment();
    SubmitFetch(flight, key);
    initiated = true;
  }
  auto operand = cache_->Await(flight);
  if (!initiated) {
    ++shared_hits_;
    OperandCache::SharedHitCounter().Increment();
  } else if (query_stats_ != nullptr) {
    // The fetch belongs to this query: charge the payload it read (the
    // synchronous path charges identically through the inner source,
    // including sibling reads of a failed reconstruction).
    query_stats_->bytes_read += operand->payload_bytes;
    obs::ProfCount(obs::ProfCounter::kBytesRead, operand->payload_bytes);
  }
  if (operand->degraded) degraded_ = true;
  if (!operand->status.ok() && status_.ok() &&
      operand->status.code() != Status::Code::kNotFound) {
    status_ = operand->status;
  }
  return operand;
}

std::shared_ptr<const CachedOperand> SharingSource::GetOperand(
    int component, uint32_t slot, OperandKey::Kind kind) const {
  OperandKey key;
  key.column = column_;
  key.component = component;
  key.slot = slot;
  key.epoch = epoch_;
  key.kind = kind;

  if (io_ != nullptr && stored_ != nullptr) return GetOperandAsync(key);

  bool hit = false;
  auto operand = cache_->GetOrFetch(
      key,
      [&](CachedOperand* out) {
        // Meter this fetch's payload via the query-stats delta (the inner
        // source charges bytes there as it reads).
        const int64_t bytes_before =
            query_stats_ != nullptr ? query_stats_->bytes_read : 0;
        const bool degraded_before = inner_->degraded();
        if (kind == OperandKey::Kind::kWah) {
          const WahBitvector* wah = inner_->FetchWah(component, slot, nullptr);
          if (wah == nullptr) {
            // No compressed payload (or it failed verification): not an
            // error — the caller falls back to the dense kind.
            out->status = Status::NotFound("no wah payload");
            return;
          }
          out->wah = *wah;
        } else {
          Status before = inner_->status();
          out->dense = inner_->Fetch(component, slot, nullptr);
          if (before.ok() && !inner_->status().ok()) {
            out->status = inner_->status();
            return;
          }
        }
        out->payload_bytes =
            (query_stats_ != nullptr ? query_stats_->bytes_read : 0) -
            bytes_before;
        if (!degraded_before && inner_->degraded()) out->degraded = true;
      },
      &hit);

  if (hit) {
    ++shared_hits_;
    if (operand->degraded) degraded_ = true;
    if (!operand->status.ok() && status_.ok() &&
        operand->status.code() != Status::Code::kNotFound) {
      status_ = operand->status;
    }
  }
  return operand;
}

Bitvector SharingSource::Fetch(int component, uint32_t slot,
                               EvalStats* stats) const {
  // A query that already failed bypasses the cache: its fetches return
  // empty bitmaps by contract and must not pollute shared entries.
  if (!inner_->status().ok()) return inner_->Fetch(component, slot, stats);
  // The unshared path counts the scan before attempting the read; mirror
  // that so failed queries report identical scan counts.
  CountScan(stats);
  auto operand = GetOperand(component, slot, OperandKey::Kind::kDense);
  if (!operand->status.ok()) return Bitvector::Zeros(num_records());
  return operand->dense;
}

const Bitvector* SharingSource::FetchView(int component, uint32_t slot,
                                          EvalStats* stats) const {
  if (!inner_->status().ok()) return nullptr;
  auto operand = GetOperand(component, slot, OperandKey::Kind::kDense);
  if (!operand->status.ok()) {
    // Per the FetchView contract nothing was counted; the caller falls
    // back to Fetch(), which counts the scan and surfaces the failure.
    return nullptr;
  }
  CountScan(stats);
  const Bitvector* view = &operand->dense;
  pinned_.push_back(std::move(operand));
  return view;
}

const WahBitvector* SharingSource::FetchWah(int component, uint32_t slot,
                                            EvalStats* stats) const {
  if (!wah_direct_) return nullptr;
  if (!inner_->status().ok()) return nullptr;
  auto operand = GetOperand(component, slot, OperandKey::Kind::kWah);
  if (!operand->status.ok()) return nullptr;
  CountScan(stats);
  const WahBitvector* view = &operand->wah;
  pinned_.push_back(std::move(operand));
  return view;
}

}  // namespace bix::serve
