// Admission control for the concurrent query service.
//
// The service accepts queries faster than it can run them only up to a
// bounded pending queue; beyond that it sheds load *at the door* with a
// typed ResourceExhausted error instead of letting latency grow without
// bound.  Each admitted query is stamped with its arrival time and an
// absolute deadline (the query's own, or the controller's default), so the
// scheduler can skip queries whose deadline already passed — a shed query
// costs a queue slot, never an evaluation.
//
// Thread safety: all public methods are safe to call concurrently; a
// producer thread can Admit while the service drains with TakeAll.

#ifndef BIX_SERVE_ADMISSION_H_
#define BIX_SERVE_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "core/predicate.h"
#include "core/status.h"

namespace bix::serve {

/// Monotonic nanosecond clock used for admission stamps and deadlines.
int64_t MonotonicNowNs();

/// One selection query as submitted to the service.  `value` is in the
/// column's *rank* domain (the service evaluates over stored indexes, whose
/// base sequences encode ranks; callers translate raw values first).
struct ServeQuery {
  uint64_t id = 0;        // caller-chosen; echoed in the result
  uint32_t column = 0;    // service column id (QueryService::AddColumn order)
  CompareOp op = CompareOp::kEq;
  int64_t value = 0;
  /// Relative deadline in nanoseconds from admission; 0 uses the
  /// controller's default (which may itself be "none").
  int64_t deadline_ns = 0;
};

/// A query that made it past the door.
struct AdmittedQuery {
  ServeQuery query;
  int64_t admit_ns = 0;     // MonotonicNowNs() at admission
  int64_t deadline_ns = 0;  // absolute; 0 = no deadline
};

class AdmissionController {
 public:
  struct Options {
    /// Queries pending beyond this are shed with ResourceExhausted.
    size_t max_pending = 256;
    /// Default relative deadline for queries that do not carry one;
    /// 0 = no deadline.
    int64_t default_deadline_ns = 0;
  };

  explicit AdmissionController(const Options& options);

  /// Admits `query` into the pending queue, stamping arrival time and
  /// absolute deadline.  Returns ResourceExhausted (and counts the shed)
  /// when the queue is full.
  Status Admit(const ServeQuery& query);

  /// Drains every pending query, in admission order.
  std::vector<AdmittedQuery> TakeAll();

  size_t pending() const;

 private:
  const Options options_;
  mutable std::mutex mu_;
  std::deque<AdmittedQuery> pending_;
};

}  // namespace bix::serve

#endif  // BIX_SERVE_ADMISSION_H_
