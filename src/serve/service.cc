#include "serve/service.h"

#include <utility>

#include "exec/segmented_eval.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "serve/sharing_source.h"

namespace bix::serve {

namespace {

obs::Counter& DeadlineMissCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("serve.deadline_misses");
  return c;
}

obs::Histogram& LatencyHistogram() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("serve.latency_ns");
  return h;
}

}  // namespace

QueryService::QueryService(const ServeOptions& options)
    : options_(options),
      admission_(AdmissionController::Options{
          options.max_pending, options.default_deadline_ns}),
      cache_(OperandCache::Options{options.cache_entries}) {
  // Async fetches only make sense through the shared cache: its pending
  // entries are the completion rendezvous.
  if (options.share_operands) {
    if (options.io_executor != nullptr) {
      io_ = options.io_executor;
    } else if (options.io_threads > 0) {
      AsyncIo::Options io_options;
      io_options.num_threads = options.io_threads;
      io_options.queue_depth = options.io_depth;
      owned_io_ = std::make_unique<AsyncIo>(io_options);
      io_ = owned_io_.get();
    }
  }
}

QueryService::~QueryService() {
  if (io_ != nullptr) io_->Drain();
}

uint32_t QueryService::AddColumn(const StoredIndex* index) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  all_slots_.push_back(std::make_unique<const ColumnSlot>(
      ColumnSlot{index, next_epoch_++}));
  columns_.push_back(std::make_unique<std::atomic<const ColumnSlot*>>(
      all_slots_.back().get()));
  return static_cast<uint32_t>(columns_.size() - 1);
}

void QueryService::UpdateColumn(uint32_t id, const StoredIndex* index) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  // A fresh epoch per swap — never the index's on-disk generation, which a
  // full rebuild restarts at 0 and which would resurrect the replaced
  // index's cache entries (see OperandKey::epoch).
  all_slots_.push_back(std::make_unique<const ColumnSlot>(
      ColumnSlot{index, next_epoch_++}));
  columns_[id]->store(all_slots_.back().get(), std::memory_order_release);
}

Status QueryService::Admit(const ServeQuery& query) {
  return admission_.Admit(query);
}

ServeResult QueryService::RunOne(const AdmittedQuery& admitted) {
  obs::ProfSpan span("serve", "query");
  ServeResult result;
  result.id = admitted.query.id;

  auto finish = [&]() {
    result.latency_ns = MonotonicNowNs() - admitted.admit_ns;
    LatencyHistogram().Observe(result.latency_ns);
  };

  // A deadline that passed while the query sat in the queue sheds it
  // before any storage work.
  if (admitted.deadline_ns != 0 && MonotonicNowNs() > admitted.deadline_ns) {
    DeadlineMissCounter().Increment();
    result.status = Status::DeadlineExceeded("deadline passed in queue");
    finish();
    return result;
  }

  if (admitted.query.column >= columns_.size()) {
    result.status = Status::InvalidArgument("unknown column");
    finish();
    return result;
  }
  // One load binds this query to an (index, epoch) pair for its whole
  // execution; a concurrent UpdateColumn cannot tear them apart.
  const ColumnSlot* slot =
      columns_[admitted.query.column]->load(std::memory_order_acquire);
  const StoredIndex* index = slot->index;

  auto source = index->OpenQuerySource(&result.stats);
  if (!source->status().ok()) {
    result.status = source->status();
    finish();
    return result;
  }

  const bool wah_direct = index->scheme() == StorageScheme::kBitmapLevel &&
                          index->codec().name() == "wah";
  ExecOptions exec;
  exec.num_threads = 1;  // parallelism lives across queries, not within
  exec.engine = options_.engine;

  Bitvector foundset;
  if (options_.share_operands) {
    // Async fetches cover BS columns only — CS/IS operands live in the
    // per-query row-major buffers OpenQuerySource already read.
    IoExecutor* io = (io_ != nullptr &&
                      index->scheme() == StorageScheme::kBitmapLevel)
                         ? io_
                         : nullptr;
    SharingSource sharing(source.get(), &cache_, admitted.query.column,
                          wah_direct, &result.stats, index, io, &planner_,
                          slot->epoch);
    if (io != nullptr) {
      // Submit every cold operand this predicate will touch before
      // evaluation starts: the reads overlap with this query's compute on
      // warm operands and with its batch-mates.
      const OperandKey::Kind kind =
          (wah_direct && options_.engine != EngineKind::kPlain)
              ? OperandKey::Kind::kWah
              : OperandKey::Kind::kDense;
      sharing.Prefetch(admitted.query.op, admitted.query.value, kind);
    }
    foundset = EvaluatePredicate(sharing, EvalAlgorithm::kAuto,
                                 admitted.query.op, admitted.query.value, exec,
                                 &result.stats);
    result.shared_hits = sharing.shared_hits();
    result.degraded = sharing.degraded();
    if (!sharing.status().ok()) result.status = sharing.status();
  } else {
    foundset = EvaluatePredicate(*source, EvalAlgorithm::kAuto,
                                 admitted.query.op, admitted.query.value, exec,
                                 &result.stats);
    result.degraded = source->degraded();
    if (!source->status().ok()) result.status = source->status();
  }

  if (result.status.ok() && admitted.deadline_ns != 0 &&
      MonotonicNowNs() > admitted.deadline_ns) {
    // Finished, but too late to be useful: report the miss, drop the
    // foundset.
    DeadlineMissCounter().Increment();
    result.status = Status::DeadlineExceeded("deadline passed during eval");
  }
  if (result.status.ok()) {
    // The evaluation ran over the index's physical bitmap order; a sorted
    // index's results must surface original (logical) row ids.
    if (!index->row_order().empty()) {
      foundset = RemapToLogical(foundset, index->row_order());
    }
    result.row_count = foundset.Count();
    result.foundset = std::move(foundset);
  }
  finish();
  return result;
}

std::vector<ServeResult> QueryService::RunPending() {
  std::vector<AdmittedQuery> batch = admission_.TakeAll();
  std::vector<ServeResult> results(batch.size());
  if (batch.empty()) return results;

  const int lanes = options_.num_threads > 1 ? options_.num_threads : 1;
  if (lanes == 1) {
    for (size_t i = 0; i < batch.size(); ++i) results[i] = RunOne(batch[i]);
    return results;
  }
  // The submitting thread is lane 0, so the pool needs lanes - 1 workers.
  exec::ThreadPool& pool = exec::SharedPool(lanes - 1);
  pool.ParallelFor(batch.size(), lanes - 1,
                   [&](size_t task, int /*lane*/) {
                     results[task] = RunOne(batch[task]);
                   });
  return results;
}

std::vector<ServeResult> QueryService::RunBatch(
    const std::vector<ServeQuery>& queries) {
  // Track which inputs were admitted so shed queries keep their slot in the
  // output.
  std::vector<ServeResult> results(queries.size());
  std::vector<size_t> admitted_slots;
  admitted_slots.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    Status s = admission_.Admit(queries[i]);
    if (s.ok()) {
      admitted_slots.push_back(i);
    } else {
      results[i].id = queries[i].id;
      results[i].status = std::move(s);
    }
  }
  std::vector<ServeResult> ran = RunPending();
  // RunPending drains in admission order == admitted_slots order.  (Nothing
  // else may Admit concurrently with RunBatch; see the class comment.)
  for (size_t j = 0; j < ran.size() && j < admitted_slots.size(); ++j) {
    results[admitted_slots[j]] = std::move(ran[j]);
  }
  return results;
}

}  // namespace bix::serve
