#include "serve/admission.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace bix::serve {

namespace {

obs::Counter& AdmittedCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("serve.admitted");
  return c;
}

obs::Counter& ShedCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("serve.shed");
  return c;
}

}  // namespace

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

AdmissionController::AdmissionController(const Options& options)
    : options_(options) {}

Status AdmissionController::Admit(const ServeQuery& query) {
  AdmittedQuery admitted;
  admitted.query = query;
  admitted.admit_ns = MonotonicNowNs();
  const int64_t relative =
      query.deadline_ns > 0 ? query.deadline_ns : options_.default_deadline_ns;
  admitted.deadline_ns = relative > 0 ? admitted.admit_ns + relative : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.size() >= options_.max_pending) {
      ShedCounter().Increment();
      return Status::ResourceExhausted("admission queue full");
    }
    pending_.push_back(std::move(admitted));
  }
  AdmittedCounter().Increment();
  return Status::OK();
}

std::vector<AdmittedQuery> AdmissionController::TakeAll() {
  std::deque<AdmittedQuery> taken;
  {
    std::lock_guard<std::mutex> lock(mu_);
    taken.swap(pending_);
  }
  return std::vector<AdmittedQuery>(std::make_move_iterator(taken.begin()),
                                    std::make_move_iterator(taken.end()));
}

size_t AdmissionController::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

}  // namespace bix::serve
