#include "serve/operand_cache.h"

#include <utility>

#include "obs/metrics.h"

namespace bix::serve {

namespace {

obs::Counter& HitCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("serve.shared_fetch_hits");
  return c;
}

obs::Counter& MissCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("serve.shared_fetch_misses");
  return c;
}

}  // namespace

OperandCache::OperandCache(const Options& options) : options_(options) {}

std::shared_ptr<const CachedOperand> OperandCache::GetOrFetch(
    const OperandKey& key, const FetchFn& fetch, bool* was_hit) {
  std::shared_ptr<Entry> entry;
  bool fetcher = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      entry = it->second;
      if (entry->in_lru) TouchLocked(entry, key);
    } else {
      entry = std::make_shared<Entry>();
      map_.emplace(key, entry);
      fetcher = true;
    }
  }

  if (fetcher) {
    MissCounter().Increment();
    if (was_hit != nullptr) *was_hit = false;
    // The expensive part — read, verify, decode — runs with no cache lock,
    // overlapping with other queries' compute and with fetches of other
    // keys.
    CachedOperand fetched;
    fetch(&fetched);
    const bool failed = !fetched.status.ok();
    {
      std::lock_guard<std::mutex> entry_lock(entry->mu);
      entry->operand = std::move(fetched);
      entry->ready = true;
    }
    entry->cv.notify_all();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (failed) {
        // Publish to the waiters that joined this flight, but let the next
        // query retry instead of caching the failure.
        auto it = map_.find(key);
        if (it != map_.end() && it->second == entry) map_.erase(it);
      } else {
        auto it = map_.find(key);
        if (it != map_.end() && it->second == entry) {
          entry->lru_it = lru_.insert(lru_.begin(), key);
          entry->in_lru = true;
          ++num_ready_;
          EvictIfNeededLocked();
        }
      }
    }
    return std::shared_ptr<const CachedOperand>(entry, &entry->operand);
  }

  HitCounter().Increment();
  if (was_hit != nullptr) *was_hit = true;
  std::unique_lock<std::mutex> entry_lock(entry->mu);
  entry->cv.wait(entry_lock, [&] { return entry->ready; });
  return std::shared_ptr<const CachedOperand>(entry, &entry->operand);
}

size_t OperandCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_ready_;
}

void OperandCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->second->in_lru) {
      lru_.erase(it->second->lru_it);
      it->second->in_lru = false;
      --num_ready_;
      it = map_.erase(it);
    } else {
      ++it;  // pending: the in-flight fetcher will publish and insert
    }
  }
}

void OperandCache::TouchLocked(const std::shared_ptr<Entry>& entry,
                               const OperandKey& key) {
  lru_.erase(entry->lru_it);
  entry->lru_it = lru_.insert(lru_.begin(), key);
}

void OperandCache::EvictIfNeededLocked() {
  while (num_ready_ > options_.max_entries && !lru_.empty()) {
    const OperandKey& victim = lru_.back();
    auto it = map_.find(victim);
    if (it != map_.end() && it->second->in_lru) {
      it->second->in_lru = false;
      map_.erase(it);  // shared_ptr keeps live readers valid
    }
    lru_.pop_back();
    --num_ready_;
  }
}

}  // namespace bix::serve
