#include "serve/operand_cache.h"

#include <utility>

#include "obs/metrics.h"

#include "core/check.h"

namespace bix::serve {

obs::Counter& OperandCache::SharedHitCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("serve.shared_fetch_hits");
  return c;
}

obs::Counter& OperandCache::SharedMissCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("serve.shared_fetch_misses");
  return c;
}

OperandCache::OperandCache(const Options& options) : options_(options) {}

OperandCache::Flight OperandCache::Begin(const OperandKey& key) {
  Flight flight;
  flight.key_ = key;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    flight.entry_ = it->second;
    if (flight.entry_->in_lru) TouchLocked(flight.entry_, key);
  } else {
    flight.entry_ = std::make_shared<Entry>();
    map_.emplace(key, flight.entry_);
    flight.owner_ = true;
  }
  return flight;
}

std::shared_ptr<const CachedOperand> OperandCache::Publish(
    const Flight& flight, CachedOperand operand) {
  BIX_CHECK(flight.owner_ && flight.entry_ != nullptr);
  const std::shared_ptr<Entry>& entry = flight.entry_;
  const bool failed = !operand.status.ok();
  {
    std::lock_guard<std::mutex> entry_lock(entry->mu);
    entry->operand = std::move(operand);
    entry->ready = true;
  }
  entry->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The map may no longer point at this entry (Clear ran, or — after a
    // failure-eviction — a retry began a new flight); only the current
    // occupant joins the LRU.
    auto it = map_.find(flight.key_);
    if (failed) {
      // Publish to the waiters that joined this flight, but let the next
      // query retry instead of caching the failure.
      if (it != map_.end() && it->second == entry) map_.erase(it);
    } else {
      if (it != map_.end() && it->second == entry) {
        entry->lru_it = lru_.insert(lru_.begin(), flight.key_);
        entry->in_lru = true;
        ++num_ready_;
        EvictIfNeededLocked();
      }
    }
  }
  return std::shared_ptr<const CachedOperand>(entry, &entry->operand);
}

std::shared_ptr<const CachedOperand> OperandCache::Await(
    const Flight& flight) const {
  BIX_CHECK(flight.entry_ != nullptr);
  const std::shared_ptr<Entry>& entry = flight.entry_;
  std::unique_lock<std::mutex> entry_lock(entry->mu);
  entry->cv.wait(entry_lock, [&] { return entry->ready; });
  return std::shared_ptr<const CachedOperand>(entry, &entry->operand);
}

std::shared_ptr<const CachedOperand> OperandCache::GetOrFetch(
    const OperandKey& key, const FetchFn& fetch, bool* was_hit) {
  Flight flight = Begin(key);
  if (flight.owner()) {
    SharedMissCounter().Increment();
    if (was_hit != nullptr) *was_hit = false;
    // The expensive part — read, verify, decode — runs with no cache lock,
    // overlapping with other queries' compute and with fetches of other
    // keys.
    CachedOperand fetched;
    fetch(&fetched);
    return Publish(flight, std::move(fetched));
  }
  SharedHitCounter().Increment();
  if (was_hit != nullptr) *was_hit = true;
  return Await(flight);
}

size_t OperandCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_ready_;
}

void OperandCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->second->in_lru) {
      lru_.erase(it->second->lru_it);
      it->second->in_lru = false;
      --num_ready_;
      it = map_.erase(it);
    } else {
      ++it;  // pending: the in-flight fetcher will publish and insert
    }
  }
}

void OperandCache::TouchLocked(const std::shared_ptr<Entry>& entry,
                               const OperandKey& key) {
  lru_.erase(entry->lru_it);
  entry->lru_it = lru_.insert(lru_.begin(), key);
}

void OperandCache::EvictIfNeededLocked() {
  while (num_ready_ > options_.max_entries && !lru_.empty()) {
    const OperandKey& victim = lru_.back();
    auto it = map_.find(victim);
    if (it != map_.end() && it->second->in_lru) {
      it->second->in_lru = false;
      map_.erase(it);  // shared_ptr keeps live readers valid
    }
    lru_.pop_back();
    --num_ready_;
  }
}

}  // namespace bix::serve
