// Shared-operand cache with single-flight fetch semantics.
//
// Under a multi-tenant workload concurrent queries probe the *same*
// bitmaps: a zipfian trace concentrates its predicates on hot columns and
// hot values, so the dominant cost — operand materialization (read, verify,
// decode), not the logical operations — is paid many times over for the
// same (column, component, slot).  This cache converts that redundant work
// into shared work: the first query to need an operand fetches it; every
// concurrent query that arrives while the fetch is in flight waits on the
// same entry and consumes the same immutable bitmap, and later queries hit
// it outright.
//
// Single-flight discipline (the Begin/Publish/Await primitive; GetOrFetch
// is the synchronous composition of the three):
//  * Begin looks the key up under the cache mutex.  A miss inserts a
//    pending entry and returns an *owner* Flight: the caller is the one
//    fetcher for this key and must Publish exactly once, from any thread,
//    with no cache lock held (cold fetches overlap with other queries'
//    compute and with each other across keys).  Completion is published
//    through the entry's own mutex + condvar.
//  * Concurrent Begins for the same key return joining Flights on the
//    pending entry; Await blocks on it, never issuing a second fetch.
//    Joiners count as shared-fetch hits: the work was shared even though
//    nobody had finished it yet.
//  * A failed Publish delivers its Status to the waiters that joined the
//    flight, then evicts the entry, so transient I/O errors are retried by
//    the next query rather than being cached forever.
//
// The pending entry is therefore also the *async completion rendezvous*:
// an owner may hand its Flight to an I/O executor job and return to
// compute; whichever I/O thread finishes the read Publishes, and every
// Await — on any query lane — wakes through the same condvar the
// synchronous path uses (storage/async_env.h, DESIGN.md §13).
//
// Entries are immutable once ready and handed out as shared_ptr, so an
// eviction can never invalidate a bitmap an in-flight query still reads.
// Eviction is LRU by ready-entry count (pending entries are pinned).
//
// Thread safety: all public methods are safe to call concurrently.

#ifndef BIX_SERVE_OPERAND_CACHE_H_
#define BIX_SERVE_OPERAND_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "bitmap/bitvector.h"
#include "bitmap/wah_bitvector.h"
#include "core/status.h"

namespace bix::obs {
class Counter;
}  // namespace bix::obs

namespace bix::serve {

/// Identity of one cached operand.  `kind` separates the dense and the
/// compressed representation of the same stored bitmap (a WAH-direct fetch
/// and a dense fetch of the same slot are different payloads); `codec` is
/// folded into the column id by the service (a column is one opened index,
/// which fixes its codec), so equal keys always denote byte-identical
/// fetches.
struct OperandKey {
  uint32_t column = 0;
  int32_t component = 0;
  uint32_t slot = 0;
  /// The column's serve epoch at the time the query bound its index: a
  /// service-assigned counter bumped on *every* UpdateColumn swap (see
  /// QueryService), never the on-disk StoredIndex generation — a full
  /// rebuild restarts the on-disk generation at 0, so it can repeat, and a
  /// repeated key would let a query on the new index consume operands
  /// cached from the old data.  Folding the never-reused epoch into the
  /// key makes operands from different swaps distinct cache citizens:
  /// after a swap, a query bound to the new index can never consume an
  /// operand fetched from the previous index's blobs (stale entries age
  /// out of the LRU unused).
  uint32_t epoch = 0;
  enum class Kind : uint8_t { kDense = 0, kWah = 1 };
  Kind kind = Kind::kDense;

  bool operator==(const OperandKey& o) const {
    return column == o.column && component == o.component && slot == o.slot &&
           epoch == o.epoch && kind == o.kind;
  }
};

struct OperandKeyHash {
  size_t operator()(const OperandKey& k) const {
    uint64_t x = (static_cast<uint64_t>(k.column) << 40) ^
                 (static_cast<uint64_t>(static_cast<uint32_t>(k.component))
                  << 32) ^
                 (static_cast<uint64_t>(k.slot) << 1) ^
                 (static_cast<uint64_t>(k.epoch) << 17) ^
                 static_cast<uint64_t>(k.kind);
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }
};

/// One fetched operand.  Immutable after `ready`; exactly one of
/// dense/wah is populated, per the key's kind.
struct CachedOperand {
  Bitvector dense;
  WahBitvector wah;
  /// Compressed payload bytes the fetch read (accounting for the query
  /// that performed it; hits read nothing).
  int64_t payload_bytes = 0;
  /// The fetch served a sibling-reconstructed bitmap; consumers inherit the
  /// degraded flag.
  bool degraded = false;
  Status status;  // non-OK: the fetch failed and the entry was evicted
};

class OperandCache {
 private:
  struct Entry;  // defined below; Flight holds a shared_ptr to one

 public:
  struct Options {
    /// Ready entries retained (LRU beyond this).  Pending fetches are
    /// pinned on top of the cap.
    size_t max_entries = 4096;
  };

  OperandCache() : OperandCache(Options{}) {}
  explicit OperandCache(const Options& options);

  /// A single-flight claim on one key.  An owner() flight must be
  /// completed with exactly one Publish (from any thread); a joining
  /// flight references an entry someone else is fetching (or has
  /// fetched) and is consumed with Await.  Copyable: an owner typically
  /// keeps one copy to Await and moves another into the I/O job that
  /// Publishes.
  class Flight {
   public:
    Flight() = default;
    bool owner() const { return owner_; }
    explicit operator bool() const { return entry_ != nullptr; }

   private:
    friend class OperandCache;
    std::shared_ptr<Entry> entry_;
    OperandKey key_;
    bool owner_ = false;
  };

  /// Non-blocking single-flight lookup: on a miss, inserts a pending entry
  /// and returns the owner flight; otherwise returns a joining flight on
  /// the existing (pending or ready) entry.  Never runs a fetch and never
  /// waits.  Owners MUST Publish exactly once or every Await on the key
  /// blocks forever.
  Flight Begin(const OperandKey& key);

  /// Owner-only: publishes `operand` (success or failure), wakes every
  /// Await, and completes the entry's cache lifecycle — LRU insertion on
  /// success, eviction on failure so the next query retries.  Safe from
  /// any thread; returns the published operand.
  std::shared_ptr<const CachedOperand> Publish(const Flight& flight,
                                               CachedOperand operand);

  /// Blocks until the flight's entry is ready and returns its operand.
  std::shared_ptr<const CachedOperand> Await(const Flight& flight) const;

  /// The fetch callback: fill `out` (and out->payload_bytes) or return the
  /// failure through out->status.  Runs without any cache lock held.
  using FetchFn = std::function<void(CachedOperand* out)>;

  /// Single-flight lookup (Begin + synchronous fetch/Publish for owners,
  /// Await for joiners).  Returns the ready (possibly failed) operand.
  /// `*was_hit` reports whether this call was served without running
  /// `fetch` — including joining a fetch already in flight.  Counts the
  /// serve.shared_fetch_{hits,misses} counters; callers composing the
  /// primitives directly count them themselves.
  std::shared_ptr<const CachedOperand> GetOrFetch(const OperandKey& key,
                                                  const FetchFn& fetch,
                                                  bool* was_hit);

  /// The cross-query sharing counters (hit = joined or ready, miss = this
  /// caller fetches), exposed so the async fetch path accounts through the
  /// same names GetOrFetch uses.
  static obs::Counter& SharedHitCounter();
  static obs::Counter& SharedMissCounter();

  /// Ready entries currently resident.
  size_t size() const;

  /// Drops every ready entry (in-flight fetches complete normally; their
  /// waiters still see the result).
  void Clear();

 private:
  struct Entry {
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;             // guarded by mu
    CachedOperand operand;          // immutable once ready
    std::list<OperandKey>::iterator lru_it;
    bool in_lru = false;            // guarded by the cache mutex
  };

  void TouchLocked(const std::shared_ptr<Entry>& entry, const OperandKey& key);
  void EvictIfNeededLocked();

  const Options options_;
  mutable std::mutex mu_;
  std::unordered_map<OperandKey, std::shared_ptr<Entry>, OperandKeyHash> map_;
  std::list<OperandKey> lru_;  // front = most recent; ready entries only
  size_t num_ready_ = 0;
};

}  // namespace bix::serve

#endif  // BIX_SERVE_OPERAND_CACHE_H_
