// Concurrent query service: admission -> shared-operand planning ->
// parallel evaluation (DESIGN.md §12).
//
// A QueryService owns the serving loop for a set of opened stored indexes
// ("columns").  Queries are admitted through a bounded AdmissionController,
// then each batch runs on the shared exec thread pool — one *query* per
// pool task, evaluated single-threaded internally (the pool's parallelism
// budget is spent across queries, where a multi-tenant workload has its
// concurrency).  Every query's operand fetches route through one shared
// OperandCache with single-flight semantics, so concurrent queries against
// hot columns coalesce their storage reads.
//
// Determinism guarantee: foundsets and EvalStats scan/op counts are
// bit-identical to running the same queries sequentially without sharing —
// the cache changes who pays for a fetch, never what is fetched or how the
// algorithms combine it (tests/serve_test.cc holds this differentially).
//
// Thread safety: AddColumn calls must finish before serving starts.
// Admit() is safe from any thread; RunPending/RunBatch must not overlap
// with each other (one drain loop at a time).

#ifndef BIX_SERVE_SERVICE_H_
#define BIX_SERVE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "bitmap/bitvector.h"
#include "core/eval.h"
#include "core/eval_stats.h"
#include "core/status.h"
#include "serve/admission.h"
#include "serve/operand_cache.h"
#include "serve/sharing_source.h"
#include "storage/async_env.h"
#include "storage/stored_index.h"

namespace bix::serve {

struct ServeOptions {
  /// Total evaluation lanes for a batch (1 = sequential drain, no pool).
  int num_threads = 4;
  /// Admission queue bound (see AdmissionController).
  size_t max_pending = 256;
  /// Default per-query deadline, relative to admission; 0 = none.
  int64_t default_deadline_ns = 0;
  /// Shared-operand cache capacity in ready entries.
  size_t cache_entries = 4096;
  /// False disables cross-query sharing (every query fetches through its
  /// own storage view) — the control arm for bench-serve.
  bool share_operands = true;
  /// Operator substrate for evaluation (core/eval.h).
  EngineKind engine = EngineKind::kPlain;
  /// > 0 enables the async read path for BS columns (requires
  /// share_operands): the service owns an AsyncIo executor with this many
  /// I/O threads, cold operand fetches run there, and each query prefetches
  /// the operands it is about to touch (storage/async_env.h, DESIGN.md
  /// §13).  0 keeps every fetch synchronous on the query lane.
  int io_threads = 0;
  /// Queue-depth bound for the owned executor: outstanding (queued +
  /// running) fetch jobs; a full queue blocks submitters (backpressure on
  /// the query lanes).
  size_t io_depth = 16;
  /// Test seam: when non-null this executor is used instead of an owned
  /// AsyncIo (io_threads/io_depth ignored; still requires share_operands).
  /// Borrowed; must outlive the service, which Drains it on destruction.
  IoExecutor* io_executor = nullptr;
};

/// Outcome of one served query.
struct ServeResult {
  uint64_t id = 0;
  Status status;
  /// The foundset, in logical (original) row ids — row-reordered indexes
  /// are remapped before the result leaves the service (empty when status
  /// is non-OK).
  Bitvector foundset;
  uint64_t row_count = 0;  // foundset popcount
  bool degraded = false;   // served via sibling reconstruction
  int64_t latency_ns = 0;  // admission -> completion (or shed)
  int64_t shared_hits = 0; // operand fetches served from the shared cache
  EvalStats stats;         // scans/ops/bytes attributed to this query
};

class QueryService {
 public:
  explicit QueryService(const ServeOptions& options);
  /// Drains in-flight async fetches before any shared state dies.
  ~QueryService();

  /// Registers an opened index for serving and returns its column id
  /// (assigned densely in call order).  The index is borrowed and must
  /// outlive the service.  Not safe concurrently with serving.
  uint32_t AddColumn(const StoredIndex* index);

  /// Atomically swaps column `id` to a new index — the compaction (or
  /// rebuild) publication point.  Safe concurrently with serving.  A query
  /// binds to an index when it *executes* (RunOne loads the column slot),
  /// not when it is admitted: a query admitted before the swap but
  /// executed after it runs against the new index.  The caller must
  /// therefore keep the old index alive until every query that already
  /// loaded its pointer completes — draining the in-flight batches after
  /// the swap suffices.  Staleness safety does not depend on that timing:
  /// each swap is assigned a fresh serve epoch stamped into the cache keys
  /// (OperandKey::epoch), so a query bound to the new index can never
  /// consume an operand cached from the old one — even when both indexes
  /// carry the same on-disk generation (e.g. a gen-0 full rebuild
  /// replacing a gen-0 original).
  void UpdateColumn(uint32_t id, const StoredIndex* index);

  size_t num_columns() const { return columns_.size(); }
  const StoredIndex* column(uint32_t id) const {
    return columns_[id]->load(std::memory_order_acquire)->index;
  }

  /// Admits one query (see AdmissionController::Admit).
  Status Admit(const ServeQuery& query);

  /// Drains the pending queue and evaluates every admitted query on up to
  /// `num_threads` lanes.  Results are in admission order.
  std::vector<ServeResult> RunPending();

  /// Convenience: admits `queries` then runs the batch.  Queries the
  /// controller sheds still yield a ServeResult (ResourceExhausted), so
  /// the output always has one entry per input, in input order.
  std::vector<ServeResult> RunBatch(const std::vector<ServeQuery>& queries);

  OperandCache& cache() { return cache_; }
  size_t pending() const { return admission_.pending(); }

  /// Peak outstanding fetch jobs on the owned executor (0 when async I/O
  /// is off or an injected executor is in use) — the overlap witness
  /// bench-serve reports.
  int64_t io_inflight_peak() const {
    return owned_io_ != nullptr ? owned_io_->inflight_peak() : 0;
  }

 private:
  /// One published binding of a column id: the index plus the serve epoch
  /// assigned when it was published.  Immutable once published (queries
  /// read both fields through one atomic pointer load, so index and epoch
  /// can never be observed mismatched across a racing swap).
  struct ColumnSlot {
    const StoredIndex* index = nullptr;
    uint32_t epoch = 0;
  };

  ServeResult RunOne(const AdmittedQuery& admitted);

  const ServeOptions options_;
  AdmissionController admission_;
  OperandCache cache_;
  PrefetchPlanner planner_;
  // Atomic slots so UpdateColumn can swap a column mid-serve; the vector
  // itself is append-only before serving starts.
  std::vector<std::unique_ptr<std::atomic<const ColumnSlot*>>> columns_;
  // Owns every ColumnSlot ever published.  Superseded slots are retained
  // until destruction: an executing query may still hold a pointer loaded
  // just before a swap, and slots are two words — the leak is bounded by
  // the number of UpdateColumn calls.
  std::vector<std::unique_ptr<const ColumnSlot>> all_slots_;
  std::mutex publish_mu_;  // serializes AddColumn/UpdateColumn publication
  uint32_t next_epoch_ = 0;  // guarded by publish_mu_; never reused
  // Async fetch executor (null = synchronous fetches).  Declared after
  // cache_/columns_ and drained in the destructor, so no fetch job can
  // outlive the state it publishes into.
  std::unique_ptr<AsyncIo> owned_io_;
  IoExecutor* io_ = nullptr;
};

}  // namespace bix::serve

#endif  // BIX_SERVE_SERVICE_H_
