// Per-query BitmapSource decorator that routes operand fetches through the
// service's shared OperandCache.
//
// One SharingSource wraps one QuerySource (storage/stored_index.h) for the
// duration of one query.  Every Fetch/FetchView/FetchWah consults the cache
// with single-flight semantics; on a miss this query performs the storage
// fetch through the inner source, on a hit it consumes the cached immutable
// bitmap.  Pointers handed out by FetchView/FetchWah stay valid for the
// query's lifetime: the source pins the backing cache entries until it is
// destroyed, so an eviction can never invalidate an operand mid-query.
//
// Accounting: bitmap-scan counts are identical to the unshared path — a hit
// is still one logical operand access, exactly as a buffer hit counts one
// scan — so foundsets AND EvalStats scan/op counts match a sequential
// replay bit for bit.  Bytes read and decompress time are charged only to
// the query that actually performed the fetch (hits read nothing).
//
// Not thread-safe: one instance serves one query on one thread (the cache
// it shares is what's concurrent).

#ifndef BIX_SERVE_SHARING_SOURCE_H_
#define BIX_SERVE_SHARING_SOURCE_H_

#include <cstdint>
#include <deque>
#include <memory>

#include "core/eval_stats.h"
#include "serve/operand_cache.h"
#include "storage/stored_index.h"

namespace bix::serve {

class SharingSource final : public QuerySource {
 public:
  /// `inner` is this query's storage view; `stats` must be the same
  /// EvalStats the inner source accumulates bytes into (used to meter each
  /// fetch's payload).  `wah_direct` says the column serves WAH operand
  /// payloads (BS scheme + "wah" codec), enabling the compressed cache
  /// kind.  All pointers are borrowed and must outlive this object.
  SharingSource(QuerySource* inner, OperandCache* cache, uint32_t column,
                bool wah_direct, EvalStats* stats);

  const BaseSequence& base() const override { return inner_->base(); }
  Encoding encoding() const override { return inner_->encoding(); }
  size_t num_records() const override { return inner_->num_records(); }
  uint32_t cardinality() const override { return inner_->cardinality(); }
  const Bitvector& non_null() const override { return inner_->non_null(); }
  const WahBitvector* NonNullWah() const override {
    return inner_->NonNullWah();
  }

  Bitvector Fetch(int component, uint32_t slot,
                  EvalStats* stats) const override;
  const Bitvector* FetchView(int component, uint32_t slot,
                             EvalStats* stats) const override;
  const WahBitvector* FetchWah(int component, uint32_t slot,
                               EvalStats* stats) const override;

  /// First failure seen by this query, through either the cache or the
  /// inner source.
  const Status& status() const override;
  /// True when this query consumed a sibling-reconstructed bitmap (its own
  /// fetch or a cached one).
  bool degraded() const override { return degraded_ || inner_->degraded(); }

  int64_t shared_hits() const { return shared_hits_; }

 private:
  // Cache lookup + single-flight fetch for one operand; returns the ready
  // entry and updates this query's error/degraded state.
  std::shared_ptr<const CachedOperand> GetOperand(
      int component, uint32_t slot, OperandKey::Kind kind) const;

  QuerySource* inner_;
  OperandCache* cache_;
  const uint32_t column_;
  const bool wah_direct_;
  EvalStats* query_stats_;
  // Entries whose bitmaps were handed out as views; pinned until the query
  // finishes.
  mutable std::deque<std::shared_ptr<const CachedOperand>> pinned_;
  mutable Status status_;
  mutable bool degraded_ = false;
  mutable int64_t shared_hits_ = 0;
};

}  // namespace bix::serve

#endif  // BIX_SERVE_SHARING_SOURCE_H_
