// Per-query BitmapSource decorator that routes operand fetches through the
// service's shared OperandCache.
//
// One SharingSource wraps one QuerySource (storage/stored_index.h) for the
// duration of one query.  Every Fetch/FetchView/FetchWah consults the cache
// with single-flight semantics; on a miss this query performs the storage
// fetch through the inner source, on a hit it consumes the cached immutable
// bitmap.  Pointers handed out by FetchView/FetchWah stay valid for the
// query's lifetime: the source pins the backing cache entries until it is
// destroyed, so an eviction can never invalidate an operand mid-query.
//
// Accounting: bitmap-scan counts are identical to the unshared path — a hit
// is still one logical operand access, exactly as a buffer hit counts one
// scan — so foundsets AND EvalStats scan/op counts match a sequential
// replay bit for bit.  Bytes read and decompress time are charged only to
// the query that actually performed the fetch (hits read nothing).
//
// Async mode (stored + io both non-null): a cold operand's read no longer
// runs inline on the query lane.  The owner of a cache flight submits a
// fetch job to the I/O executor and Awaits the pending entry — the same
// rendezvous synchronous publishes use — so waiters, single-flight, and
// failure-eviction are untouched (storage/async_env.h, DESIGN.md §13).
// Prefetch() makes the overlap real: it probe-replays the predicate over a
// zero-bitmap recording source to enumerate the operands evaluation will
// touch, then begins + submits every cold one before evaluation starts.
// The probe fetches nothing and counts nothing; a wrong prediction costs
// one wasted read, never a wrong result.  Accounting parity holds: the
// initiating query is charged the fetch's bytes at consumption, misses are
// counted at submission, and self-consumption of a prefetch is not a hit.
//
// Not thread-safe: one instance serves one query on one thread (the cache
// it shares — and the executor jobs it submits — are what's concurrent).

#ifndef BIX_SERVE_SHARING_SOURCE_H_
#define BIX_SERVE_SHARING_SOURCE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/eval_stats.h"
#include "serve/operand_cache.h"
#include "storage/stored_index.h"

namespace bix {
class IoExecutor;
}  // namespace bix

namespace bix::serve {

/// Caches probe-replay results for Prefetch: the set of (component, slot)
/// operands a predicate touches depends only on (column design, op, v) —
/// never on bitmap contents — so concurrent queries pay the probe once per
/// distinct predicate instead of once per query.  One instance per service
/// (column ids are service-local).  Thread-safe; plans are immutable once
/// computed.
class PrefetchPlanner {
 public:
  using Plan = std::vector<std::pair<int, uint32_t>>;

  /// Returns the operand list evaluating `op v` against `column` touches,
  /// probe-replaying over `meta` (the column's metadata view) on the first
  /// call for this predicate.
  std::shared_ptr<const Plan> Get(const BitmapSource& meta, uint32_t column,
                                  CompareOp op, int64_t v);

 private:
  struct Key {
    uint32_t column;
    CompareOp op;
    int64_t v;
    bool operator==(const Key& o) const {
      return column == o.column && op == o.op && v == o.v;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t h = std::hash<uint64_t>()(
          (static_cast<uint64_t>(k.column) << 3) ^
          static_cast<uint64_t>(k.op));
      return h ^ (std::hash<int64_t>()(k.v) * 0x9e3779b97f4a7c15ULL);
    }
  };

  std::mutex mu_;
  std::unordered_map<Key, std::shared_ptr<const Plan>, KeyHash> plans_;
};

class SharingSource final : public QuerySource {
 public:
  /// `inner` is this query's storage view; `stats` must be the same
  /// EvalStats the inner source accumulates bytes into (used to meter each
  /// fetch's payload).  `wah_direct` says the column serves WAH operand
  /// payloads (BS scheme + "wah" codec), enabling the compressed cache
  /// kind.  Passing `stored` (the BS-scheme index `inner` reads), `io`,
  /// and `planner` (the service's shared probe-plan cache) enables the
  /// async fetch path; any null keeps every fetch synchronous on the query
  /// lane.  All pointers are borrowed and must outlive this object; `io`
  /// must be drained before `cache` or `stored` die.  `epoch` is the
  /// column's serve epoch at the moment the query bound its index (the
  /// service bumps it on every column swap); it is stamped into every
  /// cache key so this query can never consume an operand cached from an
  /// earlier incarnation of the column (see OperandKey::epoch).
  SharingSource(QuerySource* inner, OperandCache* cache, uint32_t column,
                bool wah_direct, EvalStats* stats,
                const StoredIndex* stored = nullptr,
                IoExecutor* io = nullptr, PrefetchPlanner* planner = nullptr,
                uint32_t epoch = 0);

  /// Async mode only (no-op otherwise): enumerates the operands evaluating
  /// `A op v` will fetch and submits an async read for every cold one, so
  /// the reads run while this query — and its batch-mates — compute.
  /// `kind` is the cache kind evaluation will consume (kWah when the
  /// engine will FetchWah this column's stored payloads).
  void Prefetch(CompareOp op, int64_t v, OperandKey::Kind kind) const;

  const BaseSequence& base() const override { return inner_->base(); }
  Encoding encoding() const override { return inner_->encoding(); }
  size_t num_records() const override { return inner_->num_records(); }
  uint32_t cardinality() const override { return inner_->cardinality(); }
  const Bitvector& non_null() const override { return inner_->non_null(); }
  const WahBitvector* NonNullWah() const override {
    return inner_->NonNullWah();
  }

  Bitvector Fetch(int component, uint32_t slot,
                  EvalStats* stats) const override;
  const Bitvector* FetchView(int component, uint32_t slot,
                             EvalStats* stats) const override;
  const WahBitvector* FetchWah(int component, uint32_t slot,
                               EvalStats* stats) const override;

  /// First failure seen by this query, through either the cache or the
  /// inner source.
  const Status& status() const override;
  /// True when this query consumed a sibling-reconstructed bitmap (its own
  /// fetch or a cached one).
  bool degraded() const override { return degraded_ || inner_->degraded(); }

  int64_t shared_hits() const { return shared_hits_; }

 private:
  // Cache lookup + single-flight fetch for one operand; returns the ready
  // entry and updates this query's error/degraded state.
  std::shared_ptr<const CachedOperand> GetOperand(
      int component, uint32_t slot, OperandKey::Kind kind) const;

  // Async-mode GetOperand: flight owners submit the fetch to io_ and Await
  // the pending entry instead of fetching inline.
  std::shared_ptr<const CachedOperand> GetOperandAsync(
      const OperandKey& key) const;

  // Hands `flight` (owner) to the executor: the job fetches the operand
  // from stored_ and Publishes through the entry.  Captures no `this`.
  void SubmitFetch(OperandCache::Flight flight, const OperandKey& key) const;

  QuerySource* inner_;
  OperandCache* cache_;
  const uint32_t column_;
  const uint32_t epoch_;
  const bool wah_direct_;
  EvalStats* query_stats_;
  const StoredIndex* stored_;
  IoExecutor* io_;
  PrefetchPlanner* planner_;
  // Entries whose bitmaps were handed out as views; pinned until the query
  // finishes.
  mutable std::deque<std::shared_ptr<const CachedOperand>> pinned_;
  // Keys whose miss was already counted when Prefetch submitted them;
  // consuming one is this query collecting its own fetch, not a shared
  // hit.
  mutable std::unordered_set<OperandKey, OperandKeyHash> prefetched_;
  mutable Status status_;
  mutable bool degraded_ = false;
  mutable int64_t shared_hits_ = 0;
};

}  // namespace bix::serve

#endif  // BIX_SERVE_SHARING_SOURCE_H_
