#!/usr/bin/env bash
# Full local check: configure, build, run the test suite, smoke-run every
# benchmark binary (scaled-down data where supported), repeat the test
# suite under AddressSanitizer + UndefinedBehaviorSanitizer, and run the
# concurrency-sensitive tests under ThreadSanitizer.
#
#   scripts/check.sh           everything (default)
#   scripts/check.sh --fast    skip the sanitizer builds
#   scripts/check.sh --asan    ASan/UBSan build + tests only
#   scripts/check.sh --tsan    TSan build + exec/pool tests only
#   scripts/check.sh --diff    differential/property suite only (fast lane)
#   scripts/check.sh --chaos   fault-injection/storage chaos suite under ASan
#   scripts/check.sh --mutate  crash-point mutation battery under ASan
#   scripts/check.sh --serve   concurrent-serve suite under TSan (fast lane)
#   scripts/check.sh --bench-gate  smoke benches vs committed baselines
#                                  through the benchdiff regression gate
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_MAIN=1
RUN_ASAN=1
RUN_TSAN=1
RUN_DIFF=0
RUN_CHAOS=0
RUN_MUTATE=0
RUN_SERVE=0
RUN_BENCH_GATE=0
case "${1:-}" in
  --fast) RUN_ASAN=0; RUN_TSAN=0 ;;
  --asan) RUN_MAIN=0; RUN_TSAN=0 ;;
  --tsan) RUN_MAIN=0; RUN_ASAN=0 ;;
  --diff) RUN_MAIN=0; RUN_ASAN=0; RUN_TSAN=0; RUN_DIFF=1 ;;
  --chaos) RUN_MAIN=0; RUN_ASAN=0; RUN_TSAN=0; RUN_CHAOS=1 ;;
  --mutate) RUN_MAIN=0; RUN_ASAN=0; RUN_TSAN=0; RUN_MUTATE=1 ;;
  --serve) RUN_MAIN=0; RUN_ASAN=0; RUN_TSAN=0; RUN_SERVE=1 ;;
  --bench-gate) RUN_MAIN=0; RUN_ASAN=0; RUN_TSAN=0; RUN_BENCH_GATE=1 ;;
esac

if [[ "$RUN_DIFF" == 1 ]]; then
  # Fast lane for engine work: the seeded differential/property harness and
  # the WAH codec fuzz tests (label "differential", tests/CMakeLists.txt)
  # cross-check the plain, segmented, and compressed-domain engines for bit
  # equality and EvalStats parity in a few hundred milliseconds.
  cmake -B build -G Ninja
  cmake --build build --target bix_differential_tests
  ctest --test-dir build -L differential --output-on-failure
  # Merge-strategy matrix: the same harness re-run with each k-ary WAH
  # merge strategy pinned via BIX_WAH_MERGE, so a bug in the run-event
  # heap, the dense fold, or the adaptive fallback cannot hide behind
  # whichever strategy the tests happen to pick by default.
  for s in legacy heap dense adaptive; do
    BIX_WAH_MERGE=$s ctest --test-dir build -L differential \
        --output-on-failure
  done
  # Sorted-index axis under ASan + UBSan: the engine harness re-runs its
  # designs through the row-reordering pass (Design::sort), and the
  # row-order suite fuzzes the permutation sidecar codec — remap and
  # decode paths are pure pointer arithmetic over untrusted lengths,
  # exactly where sanitizers earn their keep.
  cmake -B build-asan -G Ninja \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake --build build-asan --target bix_tests bix_differential_tests
  ./build-asan/tests/bix_differential_tests \
      --gtest_filter='EngineDifferentialTest*'
  ./build-asan/tests/bix_tests --gtest_filter='RowOrderTest*'
fi

if [[ "$RUN_CHAOS" == 1 ]]; then
  # Storage robustness lane: the chaos differential harness
  # (tests/fault_injection_test.cc) plus the storage/format/env/recovery
  # unit tests, built with ASan + UBSan — fault paths exercise error
  # handling and reconstruction code that rarely runs otherwise, exactly
  # where lifetime bugs hide.
  cmake -B build-asan -G Ninja \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake --build build-asan --target bix_tests bix_differential_tests
  ./build-asan/tests/bix_differential_tests --gtest_filter='FaultInjection*'
  ./build-asan/tests/bix_tests \
      --gtest_filter='StorageV2Test*:FormatTest*:PosixEnvTest*:FaultInjectingEnvTest*:RunWithRetryTest*:BackoffTest*:Crc32cTest*:StorageTest*'
fi

if [[ "$RUN_MUTATE" == 1 ]]; then
  # Mutation robustness lane: the crash-point chaos battery (every
  # mutating I/O event of seeded append/delete/compact schedules made
  # fatal in turn; tests/mutation_crash_test.cc, ctest label "mutation")
  # plus the delta-log parser and mutable-index unit tests, under ASan +
  # UBSan — recovery code paths run torn buffers and partial files
  # through parsing and repair, exactly where overreads hide.
  cmake -B build-asan -G Ninja \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake --build build-asan --target bix_tests bix_mutation_tests
  ./build-asan/tests/bix_mutation_tests
  ./build-asan/tests/bix_tests \
      --gtest_filter='DeltaLog*:MutableStoredIndex*'
fi

if [[ "$RUN_SERVE" == 1 ]]; then
  # Serving lane: the shared-operand cache, admission control, the
  # concurrent-vs-sequential differential guarantee, and the async I/O
  # battery (executor lifecycle, completion rendezvous, prefetch overlap,
  # cache soak), under ThreadSanitizer — the single-flight fetch, the
  # cross-query sharing, and the off-lane publish are exactly the code
  # TSan exists for.
  cmake -B build-tsan -G Ninja \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
  cmake --build build-tsan --target bix_tests bix_async_tests
  ./build-tsan/tests/bix_tests \
      --gtest_filter='OperandCache*:Admission*:Serve*:Trace*'
  ./build-tsan/tests/bix_async_tests
fi

if [[ "$RUN_BENCH_GATE" == 1 ]]; then
  # Perf regression lane: rerun the two baseline-backed benches in smoke
  # mode (min-of-reps inside the bench makes the short runs usable) and
  # compare against bench/baselines/ through benchdiff's ±15% noise band.
  # BIX_GIT_SHA feeds the "_meta" row so results are traceable even when
  # the bench runs outside the repo.  benchdiff refuses to gate when the
  # baseline was recorded on a different host — regenerate baselines on
  # this machine (scripts/check.sh main lane does) before relying on it.
  # No -G: reuse however build/ is already configured (Ninja or Make).
  cmake -B build
  cmake --build build --target bench_wah_merge bench_wah_ablation benchdiff \
      bixctl
  BIX_GIT_SHA="$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
  export BIX_GIT_SHA
  GATE_DIR="$(mktemp -d)"
  trap 'rm -rf "$GATE_DIR"' EXIT
  # Three runs per bench, min-folded by benchdiff: run-level reps squeeze
  # the fat noise tails that per-rep minima alone cannot (especially on
  # small or shared machines).
  for i in 1 2 3; do
    ./build/bench/bench_wah_merge --smoke "$GATE_DIR/wah_merge.$i.json" \
        > /dev/null
    ./build/bench/bench_wah_ablation --smoke \
        "$GATE_DIR/wah_ablation.$i.json" > /dev/null
    ./build/tools/bixctl bench-serve --columns 4 --rows 50000 \
        --cardinality 64 --queries 1500 --threads 4 --codec lz77 \
        --io-threads 2 --out "$GATE_DIR/serve.$i.json" > /dev/null
  done
  ./build/tools/benchdiff bench/baselines/BENCH_wah_merge.json \
      "$GATE_DIR"/wah_merge.*.json
  ./build/tools/benchdiff bench/baselines/BENCH_wah_ablation.json \
      "$GATE_DIR"/wah_ablation.*.json
  ./build/tools/benchdiff bench/baselines/BENCH_serve.json \
      "$GATE_DIR"/serve.*.json
fi

if [[ "$RUN_MAIN" == 1 ]]; then
  cmake -B build -G Ninja
  cmake --build build
  ctest --test-dir build --output-on-failure

  # Heavy benches accept a divisor argument for quick smoke runs.
  ./build/bench/bench_table1_worst_case
  ./build/bench/bench_fig8_eval_algorithms
  ./build/bench/bench_fig9_encoding_tradeoff
  ./build/bench/bench_fig10_fig11_optimal_indexes
  ./build/bench/bench_table2_heuristic
  ./build/bench/bench_fig15_candidate_space
  ./build/bench/bench_table3_table4_compression 10
  ./build/bench/bench_fig16_storage_schemes 10
  ./build/bench/bench_fig17_buffering
  ./build/bench/bench_intro_ridlist_crossover
  ./build/bench/bench_plan_comparison
  ./build/bench/bench_knee_ablation
  ./build/bench/bench_workload_mix_ablation
  ./build/bench/bench_scaling

  # Machine-readable results: these benches write the shared
  # {bench, params, metric, value, unit} schema of bench/bench_json.h into
  # bench/baselines/, which is versioned (see the .gitignore exception) so
  # perf regressions show up as diffs against the committed baselines.
  mkdir -p bench/baselines
  ./build/bench/bench_wah_ablation --smoke bench/baselines/BENCH_wah_ablation.json
  ./build/bench/bench_wah_merge --smoke bench/baselines/BENCH_wah_merge.json
  BIX_GIT_SHA="$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)" \
      ./build/tools/bixctl bench-serve --columns 4 --rows 50000 \
      --cardinality 64 --queries 1500 --threads 4 --codec lz77 \
      --io-threads 2 --out bench/baselines/BENCH_serve.json
  ./build/bench/bench_obs BENCH_obs.json
  ./build/bench/bench_parallel_scaling BENCH_parallel_scaling.json
  BIX_BENCH_JSON=BENCH_micro_bitvector.json \
      ./build/bench/bench_micro_bitvector --benchmark_min_time=0.01
  ./build/bench/bench_micro_codec --benchmark_min_time=0.01
fi

if [[ "$RUN_ASAN" == 1 ]]; then
  # Sanitizer pass: rebuild the library and tests with ASan + UBSan and run
  # the full suite, which includes the label-"differential" engine harness
  # and WAH codec fuzz tests.  Benchmarks are excluded (timings are
  # meaningless under instrumentation).
  cmake -B build-asan -G Ninja \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure
fi

if [[ "$RUN_TSAN" == 1 ]]; then
  # ThreadSanitizer pass over the concurrency surface: the thread pool, the
  # segmented executor, and the parallel planner merge.  The full suite is
  # ~10x slower under TSan, so only the tests that actually spawn threads
  # run here.
  cmake -B build-tsan -G Ninja \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
  cmake --build build-tsan --target bix_tests bench_parallel_scaling
  # WahCalibration* covers the exec engine's calibrated-ratio read path:
  # concurrent kAuto evaluation racing CalibrateAutoBreakEven over the
  # relaxed-atomic cost accumulators.
  ./build-tsan/tests/bix_tests \
      --gtest_filter='ThreadPool*:*Segmented*:SelectionPlanTest*:WahCalibration*:OperandCache*:Serve*'
  ./build-tsan/bench/bench_parallel_scaling --smoke \
      build-tsan/BENCH_parallel_scaling_tsan.json
fi

echo "ALL CHECKS PASSED"
