#!/usr/bin/env bash
# Full local check: configure, build, run the test suite, smoke-run every
# benchmark binary (scaled-down data where supported), and repeat the test
# suite under AddressSanitizer + UndefinedBehaviorSanitizer.
#
#   scripts/check.sh           everything (default)
#   scripts/check.sh --fast    skip the sanitizer build
#   scripts/check.sh --asan    sanitizer build + tests only
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_MAIN=1
RUN_ASAN=1
case "${1:-}" in
  --fast) RUN_ASAN=0 ;;
  --asan) RUN_MAIN=0 ;;
esac

if [[ "$RUN_MAIN" == 1 ]]; then
  cmake -B build -G Ninja
  cmake --build build
  ctest --test-dir build --output-on-failure

  # Heavy benches accept a divisor argument for quick smoke runs.
  ./build/bench/bench_table1_worst_case
  ./build/bench/bench_fig8_eval_algorithms
  ./build/bench/bench_fig9_encoding_tradeoff
  ./build/bench/bench_fig10_fig11_optimal_indexes
  ./build/bench/bench_table2_heuristic
  ./build/bench/bench_fig15_candidate_space
  ./build/bench/bench_table3_table4_compression 10
  ./build/bench/bench_fig16_storage_schemes 10
  ./build/bench/bench_fig17_buffering
  ./build/bench/bench_intro_ridlist_crossover
  ./build/bench/bench_plan_comparison
  ./build/bench/bench_knee_ablation
  ./build/bench/bench_wah_ablation
  ./build/bench/bench_workload_mix_ablation
  ./build/bench/bench_scaling

  # Machine-readable results: the obs bench writes BENCH_obs.json and the
  # micro bench appends bitvector-kernel rows via BIX_BENCH_JSON (both use
  # the shared {bench, params, metric, value, unit} schema of
  # bench/bench_json.h).
  ./build/bench/bench_obs BENCH_obs.json
  BIX_BENCH_JSON=BENCH_micro_bitvector.json \
      ./build/bench/bench_micro_bitvector --benchmark_min_time=0.01
  ./build/bench/bench_micro_codec --benchmark_min_time=0.01
fi

if [[ "$RUN_ASAN" == 1 ]]; then
  # Sanitizer pass: rebuild the library and tests with ASan + UBSan and run
  # the full suite.  Benchmarks are excluded (timings are meaningless under
  # instrumentation).
  cmake -B build-asan -G Ninja \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure
fi

echo "ALL CHECKS PASSED"
