#!/usr/bin/env bash
# Full local check: configure, build, run the test suite, and smoke-run
# every benchmark binary (scaled-down data where supported).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Heavy benches accept a divisor argument for quick smoke runs.
./build/bench/bench_table1_worst_case
./build/bench/bench_fig8_eval_algorithms
./build/bench/bench_fig9_encoding_tradeoff
./build/bench/bench_fig10_fig11_optimal_indexes
./build/bench/bench_table2_heuristic
./build/bench/bench_fig15_candidate_space
./build/bench/bench_table3_table4_compression 10
./build/bench/bench_fig16_storage_schemes 10
./build/bench/bench_fig17_buffering
./build/bench/bench_intro_ridlist_crossover
./build/bench/bench_plan_comparison
./build/bench/bench_knee_ablation
./build/bench/bench_wah_ablation
./build/bench/bench_workload_mix_ablation
./build/bench/bench_scaling
./build/bench/bench_micro_bitvector --benchmark_min_time=0.01
./build/bench/bench_micro_codec --benchmark_min_time=0.01

echo "ALL CHECKS PASSED"
