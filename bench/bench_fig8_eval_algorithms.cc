// Figure 8: average number of bitmap scans (a) and bitmap operations (b)
// as a function of the base number b, for uniform base-b range-encoded
// indexes with C = 1000, evaluating all 6C selection queries with
// RangeEval and RangeEval-Opt.
//
// Expected shape: RangeEval-Opt strictly below RangeEval on both metrics;
// both drop steeply as b grows (fewer components) and flatten.

#include <cstdio>
#include <vector>

#include "core/bitmap_index.h"
#include "core/cost_model.h"
#include "core/eval.h"
#include "workload/generators.h"
#include "workload/queries.h"

using namespace bix;

namespace {

void RunForCardinality(uint32_t c) {
  const size_t n_records = 256;  // scan/op counts are independent of N
  std::vector<uint32_t> column = GenerateUniform(n_records, c, 17);
  std::vector<Query> queries = AllSelectionQueries(c);

  std::printf("C = %u\n", c);
  std::printf("%6s %5s | %14s %14s | %14s %14s | %12s\n", "base", "comps",
              "scans(RE)", "scans(Opt)", "ops(RE)", "ops(Opt)",
              "model(Opt)");

  const uint32_t all_bases[] = {2,  3,  4,  5,  6,  8,  10,  12,  16,  20,
                                25, 32, 40, 50, 64, 100, 150, 250, 500, 1000};
  for (uint32_t b : all_bases) {
    if (b > c) break;
    BaseSequence base = BaseSequence::Uniform(b, c);
    BitmapIndex index = BitmapIndex::Build(column, c, base, Encoding::kRange);
    EvalStats range_eval, range_opt;
    for (const Query& q : queries) {
      index.Evaluate(EvalAlgorithm::kRangeEval, q.op, q.v, &range_eval);
      index.Evaluate(EvalAlgorithm::kRangeEvalOpt, q.op, q.v, &range_opt);
    }
    double denom = static_cast<double>(queries.size());
    std::printf("%6u %5d | %14.3f %14.3f | %14.3f %14.3f | %12.3f\n", b,
                base.num_components(),
                static_cast<double>(range_eval.bitmap_scans) / denom,
                static_cast<double>(range_opt.bitmap_scans) / denom,
                static_cast<double>(range_eval.TotalOps()) / denom,
                static_cast<double>(range_opt.TotalOps()) / denom,
                ExactTime(base, c, Encoding::kRange,
                          EvalAlgorithm::kRangeEvalOpt));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Figure 8: RangeEval vs RangeEval-Opt, uniform base-b "
              "range-encoded indexes\n(the paper plots C = 1000 and reports "
              "similar trends at other cardinalities)\n\n");
  for (uint32_t c : {100u, 1000u}) RunForCardinality(c);
  std::printf("shape check: Opt <= RangeEval everywhere; measured scans "
              "match the analytic model column.\n");
  return 0;
}
