// Figure 15: size of TimeOptAlg's candidate index set |I| as a function of
// the space constraint M, for C = 1000.  (The paper labels this exhibit
// "Size of Set of Candidate Bitmap Indexes as a Function of M".)
//
// Expected shape: |I| = 0 below the feasibility threshold, grows to a large
// peak for mid-range M (many k-component bases fit), and collapses to 1
// once the n0-component time-optimal index fits outright.

#include <cstdio>

#include "core/advisor.h"

using namespace bix;

int main() {
  const uint32_t c = 1000;
  std::printf("Figure 15: candidate set size |I| vs space constraint M, "
              "C = %u\n\n", c);
  std::printf("%8s %14s\n", "M", "|I|");
  const int64_t budgets[] = {5,   10,  15,  20,  30,  40,  55,  70,  90,
                             110, 130, 160, 200, 260, 320, 400, 499, 500,
                             600, 999};
  for (int64_t m : budgets) {
    std::printf("%8lld %14lld\n", static_cast<long long>(m),
                static_cast<long long>(CandidateSetSize(c, m)));
  }
  std::printf("\nshape check: zero when infeasible (M < %d), peaked in the "
              "mid range, 1 once the time-optimal index fits (M >= 500).\n",
              MaxComponents(c));
  return 0;
}
