// Section 1 cost analysis: bitmap index vs RID-list index for plan (P3).
//
// The paper's model: reading one bitmap costs N/8 bytes; reading a RID list
// costs 4 bytes per qualifying record.  The bitmap plan wins once the
// foundset exceeds N/32 records (selectivity 1/32).  This harness measures
// actual bytes on a built index pair across a selectivity sweep and also
// reports wall-clock time.

#include <chrono>
#include <cstdio>
#include <vector>

#include "baseline/rid_list_index.h"
#include "core/bitmap_index.h"
#include "workload/generators.h"

using namespace bix;

int main() {
  const size_t n = 100000;
  const uint32_t c = 1000;
  std::vector<uint32_t> column = GenerateUniform(n, c, 3);

  // Single-component range-encoded index: one bitmap scan per <= query.
  BitmapIndex bitmap_index = BitmapIndex::Build(
      column, c, BaseSequence::SingleComponent(c), Encoding::kRange);
  RidListIndex rid_index = RidListIndex::Build(column, c);

  const int64_t bitmap_bytes_per_scan = static_cast<int64_t>((n + 7) / 8);
  std::printf("Section 1 analysis: bitmap vs RID-list bytes read, "
              "N = %zu, C = %u\n\n", n, c);
  std::printf("%14s %10s | %14s %14s %9s | %12s %12s\n", "predicate",
              "foundset", "bitmap bytes", "ridlist bytes", "winner",
              "bitmap us", "ridlist us");

  for (uint32_t v : {0u, 3u, 7u, 15u, 30u, 31u, 32u, 62u, 125u, 250u, 500u,
                     999u}) {
    EvalStats stats;
    auto t0 = std::chrono::steady_clock::now();
    Bitvector found = bitmap_index.Evaluate(CompareOp::kLe, v, &stats);
    double bitmap_us =
        1e6 * std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    int64_t bitmap_bytes = stats.bitmap_scans * bitmap_bytes_per_scan;

    int64_t rids_scanned = 0;
    t0 = std::chrono::steady_clock::now();
    std::vector<uint32_t> rids =
        rid_index.Evaluate(CompareOp::kLe, v, &rids_scanned);
    double rid_us = 1e6 * std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    int64_t rid_bytes = 4 * rids_scanned;

    std::printf("  A <= %-8u %10zu | %14lld %14lld %9s | %12.1f %12.1f\n", v,
                found.Count(), static_cast<long long>(bitmap_bytes),
                static_cast<long long>(rid_bytes),
                bitmap_bytes <= rid_bytes ? "bitmap" : "ridlist", bitmap_us,
                rid_us);
  }

  std::printf("\nmodel crossover: foundset n with 4n = N/8  =>  n/N = 1/32 "
              "= %.1f records here; the byte winner flips around "
              "selectivity ~1/32 as the paper derives.\n",
              static_cast<double>(n) / 32.0);
  return 0;
}
