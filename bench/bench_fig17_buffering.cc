// Figure 17: space-time tradeoff of range-encoded indexes under the
// optimal bitmap buffering policy, as a function of the number of buffered
// bitmaps m, for C = 1000.
//
// Expected shape: the whole frontier shifts down as m grows; with m > 0
// the buffered time-optimal index follows Theorem 10.2.

#include <cstdio>
#include <vector>

#include "buffer/buffering.h"
#include "core/advisor.h"

using namespace bix;

int main() {
  const uint32_t c = 1000;
  std::printf("Figure 17: buffered space-time tradeoff, C = %u\n", c);

  for (int64_t m : {int64_t{0}, int64_t{1}, int64_t{2}, int64_t{4},
                    int64_t{8}, int64_t{16}}) {
    std::printf("\nm = %lld buffered bitmaps (frontier):\n",
                static_cast<long long>(m));
    std::vector<BufferedDesign> frontier = BufferedFrontier(c, m);
    // Print a readable subsample: every frontier point up to space 70,
    // then the tail landmarks.
    for (const BufferedDesign& d : frontier) {
      if (d.space > 70 && d.space != frontier.back().space) continue;
      std::printf("  space=%-5lld time=%-8.3f %s\n",
                  static_cast<long long>(d.space), d.time,
                  d.base.ToString().c_str());
    }
    BufferedDesign best = BufferedTimeOptimal(c, m);
    std::printf("  buffered time-optimal (Thm 10.2): %s  time=%.3f\n",
                best.base.ToString().c_str(), best.time);
  }

  // Shape check: every frontier point at budget m is dominated (weakly) by
  // some point at budget m+1.
  bool monotone = true;
  std::vector<BufferedDesign> prev = BufferedFrontier(c, 0);
  for (int64_t m = 1; m <= 16; ++m) {
    std::vector<BufferedDesign> cur = BufferedFrontier(c, m);
    for (const BufferedDesign& p : prev) {
      bool dominated = false;
      for (const BufferedDesign& q : cur) {
        if (q.space <= p.space && q.time <= p.time + 1e-12) {
          dominated = true;
          break;
        }
      }
      if (!dominated) monotone = false;
    }
    prev = std::move(cur);
  }
  std::printf("\nshape check: frontiers improve monotonically with m: %s\n",
              monotone ? "yes" : "NO");
  return 0;
}
