// Section 7 accuracy claim: the closed-form knee characterization
// (Theorem 7.1, "the most time-efficient 2-component space-optimal index")
// matches the definition-based knee (maximum LG/RG gradient ratio on the
// space-optimal tradeoff curve) across attribute cardinalities.
//
// Expected: the definitional knee is the 2-component point everywhere, and
// Theorem 7.1's closed form matches the exhaustive 2-component search.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/advisor.h"
#include "core/cost_model.h"

using namespace bix;

int main() {
  std::printf("Knee ablation: Theorem 7.1 closed form vs exhaustive search "
              "vs definitional knee\n\n");
  std::printf("%8s | %-16s %-16s %7s | %10s\n", "C", "closed form",
              "2-comp search", "match", "def. knee n");

  int matches = 0;
  int total = 0;
  int knee_at_2 = 0;
  const uint32_t cs[] = {10,  16,  25,   37,   50,   64,   100, 128,
                         200, 250, 317,  500,  729,  1000, 1024, 1500,
                         2048, 2406, 3000, 4096};
  for (uint32_t c : cs) {
    BaseSequence closed = KneeBase(c);
    BaseSequence searched = BestSpaceOptimalBase(c, 2);
    bool match =
        std::abs(AnalyticTime(closed, Encoding::kRange) -
                 AnalyticTime(searched, Encoding::kRange)) < 1e-9 &&
        SpaceInBitmaps(closed, Encoding::kRange) ==
            SpaceInBitmaps(searched, Encoding::kRange);
    ++total;
    if (match) ++matches;

    std::vector<IndexDesign> curve;
    for (int n = MaxComponents(c); n >= 1; --n) {
      curve.push_back(MakeDesign(BestSpaceOptimalBase(c, n)));
    }
    int knee = DefinitionalKneeIndex(curve);
    int knee_n = knee >= 0
                     ? curve[static_cast<size_t>(knee)].base.num_components()
                     : -1;
    if (knee_n == 2) ++knee_at_2;
    std::printf("%8u | %-16s %-16s %7s | %10d\n", c,
                closed.ToString().c_str(), searched.ToString().c_str(),
                match ? "yes" : "NO", knee_n);
  }
  std::printf("\nclosed form == search: %d/%d; definitional knee at "
              "n = 2: %d/%d\n", matches, total, knee_at_2, total);

  // Arrangement ablation: the same multiset with its largest base at
  // component 1 (the library's arrangement) versus at the most significant
  // position.  Component 1 sees the cheaper range-path scans, so the
  // largest-first arrangement should never lose.
  std::printf("\narrangement ablation (largest base at component 1 vs at "
              "the top):\n");
  struct Multiset {
    const char* name;
    std::vector<uint32_t> bases;  // ascending
  };
  const Multiset multisets[] = {
      {"<28, 36>", {28, 36}},
      {"<10, 10, 10>", {10, 10, 10}},
      {"<2, 2, 250>", {2, 2, 250}},
      {"<4, 8, 32>", {4, 8, 32}},
  };
  int wins = 0;
  for (const Multiset& m : multisets) {
    std::vector<uint32_t> descending(m.bases.rbegin(), m.bases.rend());
    BaseSequence largest_first = BaseSequence::FromLsbFirst(descending);
    BaseSequence smallest_first = BaseSequence::FromLsbFirst(m.bases);
    double good = AnalyticTime(largest_first, Encoding::kRange);
    double bad = AnalyticTime(smallest_first, Encoding::kRange);
    if (good <= bad + 1e-12) ++wins;
    std::printf("  %-14s largest-first %.3f vs smallest-first %.3f scans\n",
                m.name, good, bad);
  }
  std::printf("  largest-at-component-1 never loses: %s\n",
              wins == static_cast<int>(std::size(multisets)) ? "yes" : "NO");
  return 0;
}
