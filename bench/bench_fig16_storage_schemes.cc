// Figure 16: time-efficiency (a), space-efficiency (b), and space-time
// tradeoff (c) of BS-, cBS- and cCS-organized indexes as a function of the
// number of components, on data set 1 (Lineitem.Quantity).
//
// The time metric is the measured average evaluation time over the paper's
// restricted query set {<=, =} x C, including file reads, in-memory
// decompression, and bitmap operations.
//
// Expected shape: BS and cBS comparable and much faster than cCS (whose
// cost is dominated by decompressing every component file per query); cCS
// smallest in space; compression's space benefit fades as n grows.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "core/advisor.h"
#include "core/bitmap_index.h"
#include "compress/huffman.h"
#include "storage/stored_index.h"
#include "workload/queries.h"
#include "workload/tpcd.h"

using namespace bix;

namespace {

struct Measured {
  double avg_ms = 0;
  double decompress_ms = 0;
  double mbytes = 0;
};

Measured Run(const BitmapIndex& index, StorageScheme scheme,
             const Codec& codec, const std::vector<Query>& queries,
             const std::filesystem::path& dir) {
  std::unique_ptr<StoredIndex> stored;
  Status s = StoredIndex::Write(index, dir, scheme, codec, &stored);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return {};
  }
  Measured m;
  m.mbytes = static_cast<double>(stored->stored_bytes()) / (1024.0 * 1024.0);
  double decompress_seconds = 0;
  auto start = std::chrono::steady_clock::now();
  for (const Query& q : queries) {
    Bitvector result = stored->Evaluate(EvalAlgorithm::kAuto, q.op, q.v,
                                        nullptr, &decompress_seconds);
    (void)result;
  }
  double total = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  m.avg_ms = 1000.0 * total / static_cast<double>(queries.size());
  m.decompress_ms =
      1000.0 * decompress_seconds / static_cast<double>(queries.size());
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  size_t divisor = 1;
  if (argc > 1) divisor = static_cast<size_t>(std::atoll(argv[1]));
  DataSet ds = MakeLineitemQuantity(kLineitemRowsSf01 / divisor);
  std::vector<Query> queries = RestrictedSelectionQueries(ds.cardinality);

  const NullCodec none;
  const DeflateLikeCodec deflate_codec;  // stand-in for the paper's zlib
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "bix_bench_fig16";

  std::printf("Figure 16: BS vs cBS vs cCS on %s.%s (N = %zu, C = %u), "
              "query set {<=, =} x C\n\n",
              ds.relation.c_str(), ds.attribute.c_str(), ds.ranks.size(),
              ds.cardinality);
  std::printf("%3s | %10s %10s %10s | %9s %9s %9s | %10s\n", "n", "BS ms/q",
              "cBS ms/q", "cCS ms/q", "BS MB", "cBS MB", "cCS MB",
              "cCS dec ms");

  int max_n = std::min(6, MaxComponents(ds.cardinality));
  for (int n = 1; n <= max_n; ++n) {
    BaseSequence base = SpaceOptimalBase(ds.cardinality, n);
    BitmapIndex index =
        BitmapIndex::Build(ds.ranks, ds.cardinality, base, Encoding::kRange);
    Measured bs = Run(index, StorageScheme::kBitmapLevel, none, queries, dir);
    Measured cbs = Run(index, StorageScheme::kBitmapLevel, deflate_codec, queries, dir);
    Measured ccs =
        Run(index, StorageScheme::kComponentLevel, deflate_codec, queries, dir);
    std::printf("%3d | %10.3f %10.3f %10.3f | %9.3f %9.3f %9.3f | %10.3f\n",
                n, bs.avg_ms, cbs.avg_ms, ccs.avg_ms, bs.mbytes, cbs.mbytes,
                ccs.mbytes, ccs.decompress_ms);
  }
  std::printf("\nshape check: cCS slowest (decompression-dominated) but "
              "smallest; BS ~ cBS in time; BS/cBS I/O grows with n while "
              "cCS's shrinks.\n");
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return 0;
}
