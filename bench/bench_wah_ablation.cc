// Ablation beyond the paper: operating on compressed bitmaps in memory
// (WAH) versus the paper's decompress-then-operate model (dense bitvector
// ops after inflating stored bitmaps).
//
// For each bit density, reports memory footprint and AND-throughput of the
// dense and WAH forms.  Expected shape: WAH wins both memory and time on
// sparse/clustered bitmaps (low-cardinality equality bitmaps, sorted
// relations) and loses on dense ~50% bitmaps — the regime split that
// motivated word-aligned schemes in the paper's wake.

#include <chrono>
#include <cstdio>

#include <random>

#include "bitmap/bitvector.h"
#include "bitmap/wah_bitvector.h"

using namespace bix;

namespace {

Bitvector RandomDense(size_t bits, double density, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0, 1);
  Bitvector out(bits);
  for (size_t i = 0; i < bits; ++i) {
    if (uni(rng) < density) out.Set(i);
  }
  return out;
}

Bitvector ClusteredDense(size_t bits, double density, size_t run,
                         uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0, 1);
  Bitvector out(bits);
  for (size_t i = 0; i < bits; i += run) {
    if (uni(rng) < density) {
      for (size_t k = i; k < std::min(i + run, bits); ++k) out.Set(k);
    }
  }
  return out;
}

double MeasureDenseAnd(const Bitvector& a, const Bitvector& b, int reps) {
  auto start = std::chrono::steady_clock::now();
  size_t guard = 0;
  for (int i = 0; i < reps; ++i) {
    Bitvector c = a;
    c.AndWith(b);
    guard += c.words()[0];
  }
  double s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
  return guard == size_t(-1) ? -1 : 1e6 * s / reps;
}

double MeasureWahAnd(const WahBitvector& a, const WahBitvector& b, int reps) {
  auto start = std::chrono::steady_clock::now();
  size_t guard = 0;
  for (int i = 0; i < reps; ++i) {
    guard += WahBitvector::And(a, b).SizeInBytes();
  }
  double s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
  return guard == size_t(-1) ? -1 : 1e6 * s / reps;
}

// Count-only forms: WahBitvector::AndCount walks both run streams without
// materializing the result; the dense counterpart is Bitvector::CountAnd.
double MeasureWahAndCount(const WahBitvector& a, const WahBitvector& b,
                          int reps) {
  auto start = std::chrono::steady_clock::now();
  size_t guard = 0;
  for (int i = 0; i < reps; ++i) {
    guard += WahBitvector::AndCount(a, b);
  }
  double s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
  return guard == size_t(-1) ? -1 : 1e6 * s / reps;
}

double MeasureDenseAndCount(const Bitvector& a, const Bitvector& b, int reps) {
  auto start = std::chrono::steady_clock::now();
  size_t guard = 0;
  for (int i = 0; i < reps; ++i) {
    guard += Bitvector::CountAnd(a, b);
  }
  double s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
  return guard == size_t(-1) ? -1 : 1e6 * s / reps;
}

}  // namespace

int main() {
  const size_t bits = 4 << 20;
  const int reps = 20;
  std::printf("WAH vs dense bitvector, %zu-bit bitmaps, AND of two "
              "operands\n\n", bits);
  std::printf("%-22s | %12s %12s | %12s %12s | %12s %12s\n", "bitmap shape",
              "dense KB", "WAH KB", "dense us/op", "WAH us/op",
              "dense cnt us", "WAH cnt us");

  struct Shape {
    const char* name;
    Bitvector a, b;
  };
  Shape shapes[] = {
      {"uniform 0.01%", RandomDense(bits, 0.0001, 1),
       RandomDense(bits, 0.0001, 2)},
      {"uniform 0.1%", RandomDense(bits, 0.001, 3),
       RandomDense(bits, 0.001, 4)},
      {"uniform 2%", RandomDense(bits, 0.02, 5), RandomDense(bits, 0.02, 6)},
      {"uniform 50%", RandomDense(bits, 0.5, 7), RandomDense(bits, 0.5, 8)},
      {"clustered 10% r=4096", ClusteredDense(bits, 0.1, 4096, 9),
       ClusteredDense(bits, 0.1, 4096, 10)},
  };
  for (Shape& s : shapes) {
    WahBitvector wa = WahBitvector::FromBitvector(s.a);
    WahBitvector wb = WahBitvector::FromBitvector(s.b);
    double dense_us = MeasureDenseAnd(s.a, s.b, reps);
    double wah_us = MeasureWahAnd(wa, wb, reps);
    double dense_cnt_us = MeasureDenseAndCount(s.a, s.b, reps);
    double wah_cnt_us = MeasureWahAndCount(wa, wb, reps);
    std::printf("%-22s | %12.1f %12.1f | %12.1f %12.1f | %12.1f %12.1f\n",
                s.name, static_cast<double>(bits) / 8 / 1024,
                static_cast<double>(wa.SizeInBytes() + wb.SizeInBytes()) / 2 /
                    1024,
                dense_us, wah_us, dense_cnt_us, wah_cnt_us);
  }
  std::printf("\nshape check: WAH dominates on sparse/clustered bitmaps and "
              "loses on dense 50%% noise.\n");
  return 0;
}
