// Ablation beyond the paper: operating on compressed bitmaps in memory
// (WAH) versus the paper's decompress-then-operate model (dense bitvector
// ops after inflating stored bitmaps).
//
// Part 1 (micro): for each bit density, memory footprint and AND-throughput
// of the dense and WAH forms.  Part 2 (end-to-end): full predicate
// evaluation over a WahCompressedSource under --engine=plain (inflate every
// fetch, dense ops), --engine=wah (run-at-a-time, never inflate), and
// --engine=auto (per-operand choice).  Expected shape: compressed execution
// wins on sparse/clustered bitmaps (low-cardinality equality bitmaps,
// sorted relations), loses on dense ~50% bitmaps, and auto tracks the
// better of the two at every density point.
//
// Usage: bench_wah_ablation [--smoke] [OUT.json]
//   --smoke    smaller bitmaps/relation (registered as a ctest smoke)
//   OUT.json   also write every measurement as bench_json.h rows

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <utility>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bitmap/bitvector.h"
#include "bitmap/wah_bitvector.h"
#include "bitmap/wah_kernels.h"
#include "core/bitmap_index.h"
#include "core/compressed_source.h"
#include "core/eval.h"
#include "core/row_order.h"
#include "exec/segmented_eval.h"
#include "obs/metrics.h"
#include "workload/generators.h"

using namespace bix;

namespace {

Bitvector RandomDense(size_t bits, double density, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0, 1);
  Bitvector out(bits);
  for (size_t i = 0; i < bits; ++i) {
    if (uni(rng) < density) out.Set(i);
  }
  return out;
}

Bitvector ClusteredDense(size_t bits, double density, size_t run,
                         uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0, 1);
  Bitvector out(bits);
  for (size_t i = 0; i < bits; i += run) {
    if (uni(rng) < density) {
      for (size_t k = i; k < std::min(i + run, bits); ++k) out.Set(k);
    }
  }
  return out;
}

double MeasureDenseAnd(const Bitvector& a, const Bitvector& b, int reps) {
  auto start = std::chrono::steady_clock::now();
  size_t guard = 0;
  for (int i = 0; i < reps; ++i) {
    Bitvector c = a;
    c.AndWith(b);
    guard += c.words()[0];
  }
  double s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
  return guard == size_t(-1) ? -1 : 1e6 * s / reps;
}

double MeasureWahAnd(const WahBitvector& a, const WahBitvector& b, int reps) {
  auto start = std::chrono::steady_clock::now();
  size_t guard = 0;
  for (int i = 0; i < reps; ++i) {
    guard += WahBitvector::And(a, b).SizeInBytes();
  }
  double s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
  return guard == size_t(-1) ? -1 : 1e6 * s / reps;
}

// Count-only forms: WahBitvector::AndCount walks both run streams without
// materializing the result; the dense counterpart is Bitvector::CountAnd.
double MeasureWahAndCount(const WahBitvector& a, const WahBitvector& b,
                          int reps) {
  auto start = std::chrono::steady_clock::now();
  size_t guard = 0;
  for (int i = 0; i < reps; ++i) {
    guard += WahBitvector::AndCount(a, b);
  }
  double s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
  return guard == size_t(-1) ? -1 : 1e6 * s / reps;
}

double MeasureDenseAndCount(const Bitvector& a, const Bitvector& b, int reps) {
  auto start = std::chrono::steady_clock::now();
  size_t guard = 0;
  for (int i = 0; i < reps; ++i) {
    guard += Bitvector::CountAnd(a, b);
  }
  double s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
  return guard == size_t(-1) ? -1 : 1e6 * s / reps;
}

// Average microseconds per query for a fixed predicate sweep over `source`
// under one engine (kPlain over a WahCompressedSource is exactly the
// paper's decompress-then-op model: every Fetch inflates).
double MeasureEngine(const BitmapSource& source, EngineKind engine,
                     uint32_t cardinality, int reps, size_t* checksum) {
  const ExecOptions options{.num_threads = 1, .engine = engine};
  const CompareOp ops[] = {CompareOp::kLe, CompareOp::kEq, CompareOp::kGt};
  const int64_t values[] = {static_cast<int64_t>(cardinality) / 10,
                            static_cast<int64_t>(cardinality) / 2,
                            static_cast<int64_t>(cardinality) - 1};
  int queries = 0;
  auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    for (CompareOp op : ops) {
      for (int64_t v : values) {
        Bitvector found =
            EvaluatePredicate(source, EvalAlgorithm::kAuto, op, v, options);
        *checksum += found.Count();
        ++queries;
      }
    }
  }
  double s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
  return 1e6 * s / queries;
}

// Relations whose bitmap densities sweep the WAH win/lose spectrum.
std::vector<uint32_t> MakeColumn(size_t rows, uint32_t cardinality,
                                 bool sorted, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<uint32_t> values(rows);
  for (size_t i = 0; i < rows; ++i) {
    values[i] = static_cast<uint32_t>(rng() % cardinality);
  }
  if (sorted) std::sort(values.begin(), values.end());
  return values;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  bench::BenchJsonWriter json;

  const size_t bits = smoke ? (1 << 20) : (4 << 20);
  const int reps = smoke ? 5 : 20;
  std::printf("WAH vs dense bitvector, %zu-bit bitmaps, AND of two "
              "operands%s\n\n", bits, smoke ? "  [smoke]" : "");
  std::printf("%-22s | %12s %12s | %12s %12s | %12s %12s\n", "bitmap shape",
              "dense KB", "WAH KB", "dense us/op", "WAH us/op",
              "dense cnt us", "WAH cnt us");

  struct Shape {
    const char* name;
    double density;
    Bitvector a, b;
  };
  Shape shapes[] = {
      {"uniform 0.01%", 0.0001, RandomDense(bits, 0.0001, 1),
       RandomDense(bits, 0.0001, 2)},
      {"uniform 0.1%", 0.001, RandomDense(bits, 0.001, 3),
       RandomDense(bits, 0.001, 4)},
      {"uniform 2%", 0.02, RandomDense(bits, 0.02, 5),
       RandomDense(bits, 0.02, 6)},
      {"uniform 50%", 0.5, RandomDense(bits, 0.5, 7),
       RandomDense(bits, 0.5, 8)},
      {"clustered 10% r=4096", 0.1, ClusteredDense(bits, 0.1, 4096, 9),
       ClusteredDense(bits, 0.1, 4096, 10)},
  };
  for (Shape& s : shapes) {
    WahBitvector wa = WahBitvector::FromBitvector(s.a);
    WahBitvector wb = WahBitvector::FromBitvector(s.b);
    double dense_us = MeasureDenseAnd(s.a, s.b, reps);
    double wah_us = MeasureWahAnd(wa, wb, reps);
    double dense_cnt_us = MeasureDenseAndCount(s.a, s.b, reps);
    double wah_cnt_us = MeasureWahAndCount(wa, wb, reps);
    double wah_kb =
        static_cast<double>(wa.SizeInBytes() + wb.SizeInBytes()) / 2 / 1024;
    std::printf("%-22s | %12.1f %12.1f | %12.1f %12.1f | %12.1f %12.1f\n",
                s.name, static_cast<double>(bits) / 8 / 1024, wah_kb,
                dense_us, wah_us, dense_cnt_us, wah_cnt_us);
    std::vector<bench::BenchParam> params = {{"shape", s.name},
                                             {"density", s.density},
                                             {"bits", bits}};
    json.Add("wah_ablation_micro", params, "dense_and_us", dense_us, "us");
    json.Add("wah_ablation_micro", params, "wah_and_us", wah_us, "us");
    json.Add("wah_ablation_micro", params, "dense_count_us", dense_cnt_us,
             "us");
    json.Add("wah_ablation_micro", params, "wah_count_us", wah_cnt_us, "us");
    json.Add("wah_ablation_micro", params, "wah_kb", wah_kb, "KB");
  }

  // k-ary merge lane: legacy linear scan vs the adaptive run-event heap
  // with dense fallback (bench_wah_merge sweeps the full strategy/fan-in
  // grid; this lane tracks the two endpoints that gate regressions).  On
  // uniform noise the adaptive merge's dense fallback must beat the
  // legacy O(k)-per-group scan by a growing margin as k rises.
  std::printf("\nk-ary OR merge, %zu-bit operands, legacy scan vs adaptive "
              "heap+fallback\n\n", bits);
  std::printf("%-22s %4s | %12s %12s | %9s\n", "operand shape", "k",
              "legacy us", "adaptive us", "speedup");
  struct MergeLane {
    const char* name;
    double density;
    bool clustered;
  };
  const MergeLane lanes[] = {
      {"uniform noise 50%", 0.5, false},
      {"uniform 0.1%", 0.001, false},
      {"clustered 10% r=4096", 0.1, true},
  };
  for (const MergeLane& lane : lanes) {
    for (size_t k : {8u, 16u}) {
      std::vector<WahBitvector> operands;
      for (size_t i = 0; i < k; ++i) {
        Bitvector d = lane.clustered
                          ? ClusteredDense(bits, lane.density, 4096, 100 + i)
                          : RandomDense(bits, lane.density, 100 + i);
        operands.push_back(WahBitvector::FromBitvector(d));
      }
      double lane_us[2] = {};
      size_t counts[2] = {};
      const WahMergeStrategy strategies[] = {WahMergeStrategy::kLegacy,
                                             WahMergeStrategy::kAdaptive};
      for (int s = 0; s < 2; ++s) {
        SetWahMergeStrategy(strategies[s]);
        // Parity check runs untimed; the timed loop measures the merge the
        // way the auto engine consumes it (a fallback result stays dense —
        // the engine folds it onward without re-compressing).
        counts[s] = OrOfMany(operands).Count();
        size_t guard = 0;
        double best_us = 0;
        for (int r = 0; r < reps; ++r) {
          auto start = std::chrono::steady_clock::now();
          WahMergeOutput out = OrOfManyAdaptive(operands);
          const double us = 1e6 * std::chrono::duration<double>(
                                      std::chrono::steady_clock::now() - start)
                                      .count();
          guard += out.dense_fallback ? out.dense.words().size()
                                      : out.wah.code_words().size();
          // min-of-reps: robust against scheduler/turbo noise at low rep
          // counts (the smoke lane runs only a handful of iterations).
          if (r == 0 || us < best_us) best_us = us;
        }
        lane_us[s] = best_us;
        if (guard == 0) counts[s] = size_t(-1);  // merge produced nothing
      }
      SetWahMergeStrategy(WahMergeStrategy::kAdaptive);
      if (counts[0] != counts[1]) {
        std::printf("FAIL: merge strategies disagree on %s k=%zu\n",
                    lane.name, k);
        return 1;
      }
      std::printf("%-22s %4zu | %12.1f %12.1f | %8.2fx\n", lane.name, k,
                  lane_us[0], lane_us[1],
                  lane_us[1] > 0 ? lane_us[0] / lane_us[1] : 0.0);
      for (int s = 0; s < 2; ++s) {
        json.Add("wah_ablation_kary_merge",
                 {{"shape", lane.name},
                  {"density", lane.density},
                  {"bits", bits},
                  {"k", static_cast<int64_t>(k)},
                  {"strategy", ToString(strategies[s])}},
                 "merge_us", lane_us[s], "us");
      }
    }
  }

  // End-to-end: the same predicate sweep over a WahCompressedSource under
  // each engine.  plain = decompress-then-op, wah = compressed-domain,
  // auto = per-operand choice; results are bit-identical (checksummed).
  const size_t rows = smoke ? 200000 : 2000000;
  const int query_reps = smoke ? 3 : 10;
  std::printf("\nend-to-end over WahCompressedSource, %zu rows, equality "
              "encoding, 9-query sweep\n\n", rows);
  std::printf("%-26s | %9s | %12s %12s %12s\n", "relation", "C",
              "plain us/q", "wah us/q", "auto us/q");

  struct Relation {
    const char* name;
    uint32_t cardinality;
    bool sorted;
  };
  const Relation relations[] = {
      {"sorted C=100 (runs)", 100, true},
      {"uniform C=100 (1% bits)", 100, false},
      {"uniform C=20 (5% bits)", 20, false},
      {"uniform C=4 (dense bits)", 4, false},
  };
  for (const Relation& rel : relations) {
    std::vector<uint32_t> values =
        MakeColumn(rows, rel.cardinality, rel.sorted, 42);
    BitmapIndex index = BitmapIndex::Build(
        values, rel.cardinality,
        BaseSequence::SingleComponent(rel.cardinality), Encoding::kEquality);
    WahCompressedSource source(index);

    size_t check_plain = 0, check_wah = 0, check_auto = 0;
    double plain_us = MeasureEngine(source, EngineKind::kPlain,
                                    rel.cardinality, query_reps, &check_plain);
    double wah_us = MeasureEngine(source, EngineKind::kWah, rel.cardinality,
                                  query_reps, &check_wah);
    double auto_us = MeasureEngine(source, EngineKind::kAuto, rel.cardinality,
                                   query_reps, &check_auto);
    if (check_wah != check_plain || check_auto != check_plain) {
      std::printf("FAIL: engines disagree on %s\n", rel.name);
      return 1;
    }
    std::printf("%-26s | %9u | %12.1f %12.1f %12.1f\n", rel.name,
                rel.cardinality, plain_us, wah_us, auto_us);
    for (auto& [engine, us] :
         std::vector<std::pair<const char*, double>>{
             {"plain", plain_us}, {"wah", wah_us}, {"auto", auto_us}}) {
      json.Add("wah_ablation_engine",
               {{"relation", rel.name},
                {"cardinality", static_cast<int64_t>(rel.cardinality)},
                {"rows", rows},
                {"engine", engine}},
               "query_us", us, "us");
    }
  }

  // Row-reordering lanes (core/row_order.h, DESIGN.md §15): the same
  // relation indexed in arrival (shuffled) order versus after a lex / Gray
  // sort.  Sorting multiplies WAH compression (arXiv 0901.3751), and the
  // smaller operands pull the auto engine's per-operand choice — and its
  // measured break-even (wah_engine.calibrated_ratio) — toward compressed
  // execution.  Foundset checksums are order-invariant, so all three arms
  // must agree bit-for-bit on every query's count.
  const size_t sort_rows = smoke ? 100000 : 1000000;
  std::printf("\nrow reordering: shuffled vs sorted builds, %zu rows, "
              "equality encoding, auto engine\n\n", sort_rows);
  std::printf("%-22s %-9s | %10s %7s | %10s %10s | %10s %9s\n", "relation",
              "order", "wah KB", "ratio", "comp ops", "plain ops",
              "auto us/q", "cal ratio");

  struct SortLane {
    const char* name;
    uint32_t cardinality;
    bool zipf;
    uint32_t component_base;
  };
  const SortLane sort_lanes[] = {
      {"zipf s=1.2 C=1000", 1000, true, 32},
      {"uniform C=64", 64, false, 8},
  };
  obs::Counter& comp_ops_counter =
      obs::MetricsRegistry::Global().GetCounter("wah_engine.compressed_ops");
  obs::Counter& plain_ops_counter =
      obs::MetricsRegistry::Global().GetCounter("wah_engine.plain_ops");
  obs::Gauge& calibrated_gauge =
      obs::MetricsRegistry::Global().GetGauge("wah_engine.calibrated_ratio");
  for (const SortLane& lane : sort_lanes) {
    std::vector<uint32_t> shuffled =
        lane.zipf ? GenerateZipf(sort_rows, lane.cardinality, 1.2, 77)
                  : GenerateUniform(sort_rows, lane.cardinality, 77);
    BaseSequence base =
        BaseSequence::Uniform(lane.component_base, lane.cardinality);
    struct OrderArm {
      const char* name;
      RowOrder order;
    };
    const OrderArm arms[] = {{"shuffled", RowOrder::kNone},
                             {"lex", RowOrder::kLex},
                             {"gray", RowOrder::kGray}};
    size_t shuffled_bytes = 0, shuffled_checksum = 0;
    for (const OrderArm& arm : arms) {
      std::vector<uint32_t> column = shuffled;
      if (arm.order != RowOrder::kNone) {
        column = ApplyPermutation(
            shuffled,
            ComputeRowOrder(shuffled, lane.cardinality, base, arm.order));
      }
      BitmapIndex index = BitmapIndex::Build(column, lane.cardinality, base,
                                             Encoding::kEquality);
      size_t wah_bytes = 0;
      for (int comp = 0; comp < base.num_components(); ++comp) {
        for (uint32_t slot = 0;
             slot < NumStoredBitmaps(Encoding::kEquality, base.base(comp));
             ++slot) {
          wah_bytes +=
              WahBitvector::FromBitvector(index.Fetch(comp, slot, nullptr))
                  .SizeInBytes();
        }
      }
      if (arm.order == RowOrder::kNone) shuffled_bytes = wah_bytes;
      const double ratio = static_cast<double>(shuffled_bytes) /
                           static_cast<double>(wah_bytes);

      WahCompressedSource source(index);
      const int64_t comp0 = comp_ops_counter.value();
      const int64_t plain0 = plain_ops_counter.value();
      size_t checksum = 0;
      double auto_us = MeasureEngine(source, EngineKind::kAuto,
                                     lane.cardinality, query_reps, &checksum);
      const int64_t compressed_ops = comp_ops_counter.value() - comp0;
      const int64_t plain_ops = plain_ops_counter.value() - plain0;
      const int64_t calibrated = calibrated_gauge.value();
      if (arm.order == RowOrder::kNone) {
        shuffled_checksum = checksum;
      } else if (checksum != shuffled_checksum) {
        std::printf("FAIL: sorted foundset counts diverge on %s %s\n",
                    lane.name, arm.name);
        return 1;
      }
      std::printf("%-22s %-9s | %10.1f %6.2fx | %10lld %10lld | %10.1f "
                  "%9lld\n",
                  lane.name, arm.name,
                  static_cast<double>(wah_bytes) / 1024, ratio,
                  static_cast<long long>(compressed_ops),
                  static_cast<long long>(plain_ops), auto_us,
                  static_cast<long long>(calibrated));
      const std::vector<bench::BenchParam> params = {
          {"relation", lane.name},
          {"order", arm.name},
          {"rows", sort_rows},
          {"cardinality", static_cast<int64_t>(lane.cardinality)}};
      json.Add("wah_ablation_roworder", params, "wah_index_kb",
               static_cast<double>(wah_bytes) / 1024, "KB");
      json.Add("wah_ablation_roworder", params, "size_ratio", ratio, "x");
      json.Add("wah_ablation_roworder", params, "query_us", auto_us, "us");
      json.Add("wah_ablation_roworder", params, "compressed_ops",
               static_cast<double>(compressed_ops), "count");
      json.Add("wah_ablation_roworder", params, "plain_ops",
               static_cast<double>(plain_ops), "count");
      json.Add("wah_ablation_roworder", params, "calibrated_ratio",
               static_cast<double>(calibrated), "permille");
    }
  }

  std::printf("\nshape check: compressed-domain execution dominates on "
              "sparse/clustered bitmaps,\nloses on dense ~50%% noise, and "
              "--engine=auto tracks the better substrate.\n");
  if (!json_path.empty()) {
    if (!json.WriteFile(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %zu rows -> %s\n", json.size(), json_path.c_str());
  }
  return 0;
}
