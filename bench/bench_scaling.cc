// Scaling characteristics (engineering companion to the paper's cost
// model): index build throughput and query latency versus relation
// cardinality N, for the knee design at C = 1000.
//
// Expected shape: build time and per-query time scale linearly with N
// (bitmaps are N bits); expected scans per query are N-independent,
// matching the analytic model at every size.

#include <chrono>
#include <cstdio>
#include <vector>

#include "core/advisor.h"
#include "core/bitmap_index.h"
#include "core/cost_model.h"
#include "workload/generators.h"
#include "workload/queries.h"

using namespace bix;

int main() {
  const uint32_t c = 1000;
  const BaseSequence base = KneeBase(c);
  std::printf("Scaling: knee index %s over C = %u\n\n",
              base.ToString().c_str(), c);
  std::printf("%10s | %10s %14s | %12s %12s %10s\n", "N", "build ms",
              "index MB", "us/query", "scans/query", "model");

  for (size_t n : {size_t{100000}, size_t{400000}, size_t{1600000},
                   size_t{4000000}}) {
    std::vector<uint32_t> column = GenerateUniform(n, c, 7);
    auto t0 = std::chrono::steady_clock::now();
    BitmapIndex index = BitmapIndex::Build(column, c, base, Encoding::kRange);
    double build_ms =
        1e3 * std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();

    std::vector<Query> queries = RestrictedSelectionQueries(c);
    EvalStats stats;
    t0 = std::chrono::steady_clock::now();
    for (const Query& q : queries) index.Evaluate(q.op, q.v, &stats);
    double query_us =
        1e6 * std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count() /
        static_cast<double>(queries.size());

    int64_t model_scans = 0;
    for (const Query& q : queries) {
      model_scans += ModelScans(base, c, Encoding::kRange,
                                EvalAlgorithm::kRangeEvalOpt, q.op, q.v);
    }
    std::printf("%10zu | %10.1f %14.1f | %12.1f %12.3f %10.3f\n", n, build_ms,
                static_cast<double>(index.SizeInBytes()) / (1024.0 * 1024.0),
                query_us,
                static_cast<double>(stats.bitmap_scans) /
                    static_cast<double>(queries.size()),
                static_cast<double>(model_scans) /
                    static_cast<double>(queries.size()));
  }
  std::printf("\nshape check: linear in N; scans per query constant and "
              "equal to the model (the {<=,=} workload is cheaper than the "
              "full six-operator mix).\n");
  return 0;
}
