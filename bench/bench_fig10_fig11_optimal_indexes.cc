// Figures 10 and 11: the space-time tradeoff of (a) the entire class of
// indexes, (b) the class of space-optimal indexes, and (c) the class of
// time-optimal indexes, for C = 1000; and the space-optimal curve labeled
// with component counts, whose knee is the 2-component point.
//
// Expected shape: the space-optimal curve's points lie on the full-space
// frontier; the time-optimal curve is far more space-hungry at equal time;
// the definitional knee lands on n = 2.

#include <cstdio>
#include <vector>

#include "core/advisor.h"
#include "core/cost_model.h"

using namespace bix;

int main() {
  const uint32_t c = 1000;

  std::printf("Figure 10: space-time tradeoff, C = %u\n\n", c);

  std::printf("all indexes (optimal frontier of the full design space):\n");
  std::vector<IndexDesign> frontier = OptimalFrontier(c);
  for (const IndexDesign& d : frontier) {
    std::printf("  space=%-5lld time=%-8.3f %s\n",
                static_cast<long long>(d.space), d.time,
                d.base.ToString().c_str());
  }

  std::printf("\nFigure 11: space-optimal indexes labeled with component "
              "count n:\n");
  std::vector<IndexDesign> curve;
  for (int n = MaxComponents(c); n >= 1; --n) {
    IndexDesign d = MakeDesign(BestSpaceOptimalBase(c, n));
    std::printf("  n=%-3d space=%-5lld time=%-8.3f %s\n", n,
                static_cast<long long>(d.space), d.time,
                d.base.ToString().c_str());
    curve.push_back(d);
  }
  int knee = DefinitionalKneeIndex(curve);
  if (knee >= 0) {
    std::printf("  knee of the space-optimal curve: n=%d (%s)\n",
                curve[static_cast<size_t>(knee)].base.num_components(),
                curve[static_cast<size_t>(knee)].base.ToString().c_str());
  }

  std::printf("\ntime-optimal indexes per component count:\n");
  for (int n = 1; n <= MaxComponents(c); ++n) {
    IndexDesign d = MakeDesign(TimeOptimalBase(c, n));
    std::printf("  n=%-3d space=%-5lld time=%-8.3f %s\n", n,
                static_cast<long long>(d.space), d.time,
                d.base.ToString().c_str());
  }

  // Shape check: every space-optimal point is on the global frontier.
  int on_frontier = 0;
  for (const IndexDesign& d : curve) {
    for (const IndexDesign& f : frontier) {
      if (f.space == d.space && f.time <= d.time + 1e-9) {
        ++on_frontier;
        break;
      }
    }
  }
  std::printf("\nspace-optimal points matching the full frontier: %d/%zu\n",
              on_frontier, curve.size());
  return 0;
}
