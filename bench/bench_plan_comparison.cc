// Section 1 plan study, executed: P1 (full scan) vs P2 (index + filter
// scan) vs P3 (index merge) on a two-predicate conjunctive selection, with
// actual byte accounting under the paper's cost model, across a sweep of
// selectivity factors.
//
// Expected shape: P3 with bitmap indexes is cheapest for the
// high-selectivity-factor (large-foundset) DSS regime; P2 wins when one
// predicate is extremely selective; P1 only competes when the conjunction
// qualifies most of the relation and tuples are narrow.

#include <cstdio>

#include "core/advisor.h"
#include "plan/selection_plan.h"
#include "workload/generators.h"

using namespace bix;

int main() {
  const size_t rows = 200000;
  Table table(rows);
  int a = table.AddColumn("a", GenerateUniform(rows, 1000, 1), 1000);
  int b = table.AddColumn("b", GenerateUniform(rows, 1000, 2), 1000);
  // Padding columns make the relation wide, as in a warehouse fact table.
  for (int i = 0; i < 14; ++i) {
    table.AddColumn("pad" + std::to_string(i),
                    GenerateUniform(rows, 4, 10 + static_cast<uint64_t>(i)),
                    4);
  }
  table.BuildBitmapIndex(a, BaseSequence::SingleComponent(1000));
  table.BuildBitmapIndex(b, BaseSequence::SingleComponent(1000));
  SelectionPlanner planner(table);

  std::printf("Plan comparison: SELECT ... WHERE a <= x AND b <= x, "
              "N = %zu, tuple = %lld bytes\n\n",
              rows, static_cast<long long>(table.tuple_bytes()));
  std::printf("%12s %10s | %12s %12s %12s | %10s %7s\n", "selectivity",
              "foundset", "P1 bytes", "P2 bytes", "P3 bytes", "chosen",
              "agree");

  for (int64_t x : {0, 3, 9, 31, 99, 249, 499, 749, 999}) {
    ConjunctiveQuery query = {{a, CompareOp::kLe, x}, {b, CompareOp::kLe, x}};
    ExecutionResult p1 =
        planner.Execute(query, PlanEstimate{PlanKind::kFullScan, -1, 0});
    ExecutionResult p2 =
        planner.Execute(query, PlanEstimate{PlanKind::kIndexFilter, a, 0});
    ExecutionResult p3 =
        planner.Execute(query, PlanEstimate{PlanKind::kIndexMerge, -1, 0});
    bool agree = p1.foundset == p2.foundset && p2.foundset == p3.foundset;
    PlanEstimate chosen = planner.Choose(query);
    std::printf("%11.3f%% %10zu | %12lld %12lld %12lld | %10s %7s\n",
                100.0 * (static_cast<double>(x) + 1) / 1000.0,
                p3.foundset.Count(), static_cast<long long>(p1.bytes_read),
                static_cast<long long>(p2.bytes_read),
                static_cast<long long>(p3.bytes_read),
                std::string(ToString(chosen.kind)).c_str(),
                agree ? "yes" : "NO");
  }

  std::printf("\nshape check: P3's cost is flat (a few bitmaps per "
              "predicate) while P1/P2 scale with tuples touched; P3 "
              "dominates the DSS regime as Section 1 argues.\n");
  return 0;
}
