// Micro-benchmarks of the bitvector substrate: the logical operations every
// predicate evaluation is built from, popcount, and (de)serialization.

#include <random>

#include <benchmark/benchmark.h>

#include "bitmap/bitvector.h"

namespace {

bix::Bitvector RandomBitvector(size_t bits, uint64_t seed) {
  std::mt19937_64 rng(seed);
  bix::Bitvector bv(bits);
  for (size_t i = 0; i < bits; i += 64) {
    uint64_t word = rng();
    for (int k = 0; k < 64 && i + static_cast<size_t>(k) < bits; ++k) {
      if ((word >> k) & 1) bv.Set(i + static_cast<size_t>(k));
    }
  }
  return bv;
}

void BM_BitvectorAnd(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  bix::Bitvector a = RandomBitvector(bits, 1);
  bix::Bitvector b = RandomBitvector(bits, 2);
  for (auto _ : state) {
    bix::Bitvector c = a;
    c.AndWith(b);
    benchmark::DoNotOptimize(c);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bits / 8));
}
BENCHMARK(BM_BitvectorAnd)->Arg(1 << 13)->Arg(1 << 17)->Arg(1 << 21);

void BM_BitvectorOr(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  bix::Bitvector a = RandomBitvector(bits, 1);
  bix::Bitvector b = RandomBitvector(bits, 2);
  for (auto _ : state) {
    bix::Bitvector c = a;
    c.OrWith(b);
    benchmark::DoNotOptimize(c);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bits / 8));
}
BENCHMARK(BM_BitvectorOr)->Arg(1 << 17);

void BM_BitvectorXorNot(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  bix::Bitvector a = RandomBitvector(bits, 1);
  bix::Bitvector b = RandomBitvector(bits, 2);
  for (auto _ : state) {
    bix::Bitvector c = a;
    c.XorWith(b);
    c.NotInPlace();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_BitvectorXorNot)->Arg(1 << 17);

void BM_BitvectorCount(benchmark::State& state) {
  bix::Bitvector a = RandomBitvector(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Count());
  }
}
BENCHMARK(BM_BitvectorCount)->Arg(1 << 17)->Arg(1 << 21);

void BM_BitvectorToSetBitIndices(benchmark::State& state) {
  // Sparse foundset extraction (RID materialization).
  size_t bits = 1 << 20;
  bix::Bitvector a(bits);
  std::mt19937_64 rng(4);
  for (int i = 0; i < state.range(0); ++i) {
    a.Set(rng() % bits);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.ToSetBitIndices());
  }
}
BENCHMARK(BM_BitvectorToSetBitIndices)->Arg(1000)->Arg(100000);

void BM_BitvectorSerialize(benchmark::State& state) {
  bix::Bitvector a = RandomBitvector(1 << 20, 5);
  for (auto _ : state) {
    auto bytes = a.ToBytes();
    benchmark::DoNotOptimize(bix::Bitvector::FromBytes(bytes, a.size()));
  }
}
BENCHMARK(BM_BitvectorSerialize);

}  // namespace
