// Micro-benchmarks of the bitvector substrate: the logical operations every
// predicate evaluation is built from, popcount, and (de)serialization.
//
// With BIX_BENCH_JSON=<path> in the environment, results are additionally
// written to <path> in the shared one-row-per-metric schema (bench_json.h);
// scripts/check.sh uses this to produce BENCH_obs.json companions.

#include <cstdlib>
#include <random>

#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "bitmap/bitvector.h"

namespace {

bix::Bitvector RandomBitvector(size_t bits, uint64_t seed) {
  std::mt19937_64 rng(seed);
  bix::Bitvector bv(bits);
  for (size_t i = 0; i < bits; i += 64) {
    uint64_t word = rng();
    for (int k = 0; k < 64 && i + static_cast<size_t>(k) < bits; ++k) {
      if ((word >> k) & 1) bv.Set(i + static_cast<size_t>(k));
    }
  }
  return bv;
}

void BM_BitvectorAnd(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  bix::Bitvector a = RandomBitvector(bits, 1);
  bix::Bitvector b = RandomBitvector(bits, 2);
  for (auto _ : state) {
    bix::Bitvector c = a;
    c.AndWith(b);
    benchmark::DoNotOptimize(c);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bits / 8));
}
BENCHMARK(BM_BitvectorAnd)->Arg(1 << 13)->Arg(1 << 17)->Arg(1 << 21);

void BM_BitvectorOr(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  bix::Bitvector a = RandomBitvector(bits, 1);
  bix::Bitvector b = RandomBitvector(bits, 2);
  for (auto _ : state) {
    bix::Bitvector c = a;
    c.OrWith(b);
    benchmark::DoNotOptimize(c);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bits / 8));
}
BENCHMARK(BM_BitvectorOr)->Arg(1 << 17);

void BM_BitvectorXorNot(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  bix::Bitvector a = RandomBitvector(bits, 1);
  bix::Bitvector b = RandomBitvector(bits, 2);
  for (auto _ : state) {
    bix::Bitvector c = a;
    c.XorWith(b);
    c.NotInPlace();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_BitvectorXorNot)->Arg(1 << 17);

void BM_BitvectorCount(benchmark::State& state) {
  bix::Bitvector a = RandomBitvector(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Count());
  }
}
BENCHMARK(BM_BitvectorCount)->Arg(1 << 17)->Arg(1 << 21);

void BM_BitvectorToSetBitIndices(benchmark::State& state) {
  // Sparse foundset extraction (RID materialization).
  size_t bits = 1 << 20;
  bix::Bitvector a(bits);
  std::mt19937_64 rng(4);
  for (int i = 0; i < state.range(0); ++i) {
    a.Set(rng() % bits);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.ToSetBitIndices());
  }
}
BENCHMARK(BM_BitvectorToSetBitIndices)->Arg(1000)->Arg(100000);

void BM_BitvectorSerialize(benchmark::State& state) {
  bix::Bitvector a = RandomBitvector(1 << 20, 5);
  for (auto _ : state) {
    auto bytes = a.ToBytes();
    benchmark::DoNotOptimize(bix::Bitvector::FromBytes(bytes, a.size()));
  }
}
BENCHMARK(BM_BitvectorSerialize);

// Console reporter that also captures each result as a schema row.  The
// benchmark name's slash-separated arguments become params {"arg0": ...}.
// (Deriving from ConsoleReporter keeps this a display reporter — the
// library insists on --benchmark_out when given a separate file reporter.)
class SchemaJsonReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      std::vector<bix::bench::BenchParam> params;
      const std::string& args = run.run_name.args;
      size_t start = 0;
      int arg_index = 0;
      while (start < args.size()) {
        size_t end = args.find('/', start);
        if (end == std::string::npos) end = args.size();
        params.emplace_back("arg" + std::to_string(arg_index++),
                            args.substr(start, end - start));
        start = end + 1;
      }
      const char* unit = benchmark::GetTimeUnitString(run.time_unit);
      writer_.Add(run.run_name.function_name, params, "real_time",
                  run.GetAdjustedRealTime(), unit);
      writer_.Add(run.run_name.function_name, params, "cpu_time",
                  run.GetAdjustedCPUTime(), unit);
      auto bps = run.counters.find("bytes_per_second");
      if (bps != run.counters.end()) {
        writer_.Add(run.run_name.function_name, params, "bytes_per_second",
                    bps->second, "bytes/s");
      }
    }
  }

  const bix::bench::BenchJsonWriter& writer() const { return writer_; }

 private:
  bix::bench::BenchJsonWriter writer_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const char* json_path = std::getenv("BIX_BENCH_JSON");
  if (json_path != nullptr) {
    SchemaJsonReporter rows;
    benchmark::RunSpecifiedBenchmarks(&rows);
    if (!rows.writer().WriteFile(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path);
      return 1;
    }
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}
