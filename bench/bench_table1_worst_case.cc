// Table 1: worst-case number of bitmap operations and scans per predicate
// for RangeEval vs RangeEval-Opt, measured by instrumenting the actual
// algorithms on an n-component index at a predicate constant whose digits
// are all interior (the worst and most probable case).
//
// The paper reports these counts as formulas in n; this harness prints the
// measured counts for n = 1..6 plus the closed forms they fit.

#include <cstdio>
#include <vector>

#include "core/bitmap_index.h"
#include "core/eval.h"
#include "workload/generators.h"

using namespace bix;

namespace {

struct Row {
  const char* predicate;
  CompareOp op;
  int64_t v_offset;  // added to the all-fives constant
};

void PrintAlgorithm(const char* name, EvalAlgorithm algorithm, int max_n) {
  const Row rows[] = {
      {"A <= c", CompareOp::kLe, 0}, {"A >= c", CompareOp::kGe, 1},
      {"A >  c", CompareOp::kGt, 0}, {"A <  c", CompareOp::kLt, 1},
      {"A  = c", CompareOp::kEq, 0}, {"A != c", CompareOp::kNe, 0},
  };
  std::printf("%s\n", name);
  std::printf("  %-8s", "pred");
  for (int n = 1; n <= max_n; ++n) std::printf("      n=%d", n);
  std::printf("   (columns: AND/OR/XOR/NOT ops | scans)\n");
  for (const Row& row : rows) {
    std::printf("  %-8s", row.predicate);
    for (int n = 1; n <= max_n; ++n) {
      uint32_t c = 1;
      for (int i = 0; i < n; ++i) c *= 10;
      std::vector<uint32_t> values = GenerateUniform(64, c, 7);
      BitmapIndex index = BitmapIndex::Build(
          values, c, BaseSequence::Uniform(10, c), Encoding::kRange);
      int64_t mid = 0;
      for (int i = 0; i < n; ++i) mid = mid * 10 + 5;
      EvalStats stats;
      index.Evaluate(algorithm, row.op, mid + row.v_offset, &stats);
      std::printf("  %3lld|%2lld", static_cast<long long>(stats.TotalOps()),
                  static_cast<long long>(stats.bitmap_scans));
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("Table 1: worst-case bitmap operations and scans "
              "(uniform base-10 index, interior digits)\n\n");
  PrintAlgorithm("RangeEval (O'Neil & Quass Alg. 4.3)",
                 EvalAlgorithm::kRangeEval, 6);
  std::printf("\n");
  PrintAlgorithm("RangeEval-Opt (this paper)", EvalAlgorithm::kRangeEvalOpt, 6);
  std::printf(
      "\nclosed forms (n components):\n"
      "  RangeEval:     range predicates 4n..5n+1 ops, 2n scans;"
      " equality 2n..2n+2 ops, 2n scans\n"
      "  RangeEval-Opt: range predicates 2n-1..2n ops, 2n-1 scans;"
      " equality 2n+1..2n+2 ops, 2n scans\n"
      "  => ~40-50%% fewer operations and one fewer scan per range "
      "predicate.\n");
  return 0;
}
