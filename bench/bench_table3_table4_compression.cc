// Tables 3 and 4: the experimental data sets and the compressibility of
// the three storage schemes (paper Section 9.2).
//
// Table 3: characteristics of the two TPC-D-shaped data sets (synthetic;
// see DESIGN.md §4 for the substitution).
// Table 4: for space-optimal range-encoded indexes with n = 1..6
// components, the size of the index under cBS / cCS / cIS as a percentage
// of its size under uncompressed BS.
//
// Expected shape: cCS smallest (row-major step patterns compress best);
// compression gains shrink rapidly once the index is decomposed (n >= 2).

#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "core/advisor.h"
#include "core/bitmap_index.h"
#include "compress/huffman.h"
#include "storage/stored_index.h"
#include "workload/tpcd.h"

using namespace bix;

namespace {

void RunDataSet(const char* label, const DataSet& ds, size_t scale_note) {
  std::printf("\nTable 4(%s): %s.%s, N = %zu, C = %u\n", label,
              ds.relation.c_str(), ds.attribute.c_str(), ds.ranks.size(),
              ds.cardinality);
  std::printf("  %-22s %14s %9s %9s %9s\n", "base", "BS bytes", "cBS %",
              "cCS %", "cIS %");
  (void)scale_note;

  const DeflateLikeCodec deflate_codec;
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "bix_bench_table4";
  int max_n = std::min(6, MaxComponents(ds.cardinality));
  for (int n = 1; n <= max_n; ++n) {
    BaseSequence base = SpaceOptimalBase(ds.cardinality, n);
    BitmapIndex index =
        BitmapIndex::Build(ds.ranks, ds.cardinality, base, Encoding::kRange);

    int64_t bs_raw = 0;
    double pct[3] = {0, 0, 0};
    const StorageScheme schemes[] = {StorageScheme::kBitmapLevel,
                                     StorageScheme::kComponentLevel,
                                     StorageScheme::kIndexLevel};
    for (int s = 0; s < 3; ++s) {
      std::unique_ptr<StoredIndex> stored;
      Status status =
          StoredIndex::Write(index, dir, schemes[s], deflate_codec, &stored);
      if (!status.ok()) {
        std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
        return;
      }
      if (s == 0) bs_raw = stored->uncompressed_bytes();
      pct[s] = 100.0 * static_cast<double>(stored->stored_bytes()) /
               static_cast<double>(bs_raw);
    }
    std::printf("  %-22s %14lld %8.1f%% %8.1f%% %8.1f%%\n",
                base.ToString().c_str(), static_cast<long long>(bs_raw),
                pct[0], pct[1], pct[2]);
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace

int main(int argc, char** argv) {
  // Full SF-0.1 sizes by default; pass a divisor to shrink for quick runs.
  size_t divisor = 1;
  if (argc > 1) divisor = static_cast<size_t>(std::atoll(argv[1]));

  DataSet ds1 = MakeLineitemQuantity(kLineitemRowsSf01 / divisor);
  DataSet ds2 = MakeOrderOrderdate(kOrderRowsSf01 / divisor);

  std::printf("Table 3: experimental data sets (synthetic TPC-D, SF 0.1%s)\n",
              divisor == 1 ? "" : ", scaled down");
  std::printf("  %-12s %-12s %-12s %-14s\n", "", "Data Set 1", "",
              "Data Set 2");
  std::printf("  %-12s %-12s %-12s %-14s\n", "Relation", ds1.relation.c_str(),
              "", ds2.relation.c_str());
  std::printf("  %-12s %-12zu %-12s %-14zu\n", "Cardinality",
              ds1.ranks.size(), "", ds2.ranks.size());
  std::printf("  %-12s %-12s %-12s %-14s\n", "Attribute", ds1.attribute.c_str(),
              "", ds2.attribute.c_str());
  std::printf("  %-12s %-12u %-12s %-14u\n", "Attr. card. C", ds1.cardinality,
              "", ds2.cardinality);

  RunDataSet("a", ds1, divisor);
  RunDataSet("b", ds2, divisor);

  std::printf("\nshape check: cCS <= cBS <= 100%% everywhere; compression "
              "gains fade as n grows (decomposition is itself the best "
              "compressor).\n");
  return 0;
}
