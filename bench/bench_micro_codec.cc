// Micro-benchmarks of the compression substrate on representative bitmap
// payloads: BS bitmaps of uniform data (hard), CS row-major range-encoded
// matrices (periodic, LZ-friendly), and sparse bitmaps (RLE-friendly).

#include <random>
#include <vector>

#include <benchmark/benchmark.h>

#include "compress/codec.h"
#include "core/bitmap_index.h"
#include "workload/generators.h"

namespace {

using bix::Codec;
using bix::CodecByName;

std::vector<uint8_t> BsBitmapPayload() {
  // One range-encoded bitmap of a uniform C = 50 column: ~50% density.
  std::vector<uint32_t> column = bix::GenerateUniform(200000, 50, 1);
  bix::BitmapIndex index = bix::BitmapIndex::Build(
      column, 50, bix::BaseSequence::SingleComponent(50),
      bix::Encoding::kRange);
  return index.component(0).stored(24).ToBytes();
}

std::vector<uint8_t> SparsePayload() {
  std::vector<uint8_t> data(200000 / 8, 0);
  std::mt19937_64 rng(2);
  for (int i = 0; i < 500; ++i) data[rng() % data.size()] |= 1;
  return data;
}

void RunCompress(benchmark::State& state, const Codec& codec,
                 const std::vector<uint8_t>& data) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Compress(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
  state.counters["ratio"] = static_cast<double>(codec.Compress(data).size()) /
                            static_cast<double>(data.size());
}

void RunDecompress(benchmark::State& state, const Codec& codec,
                   const std::vector<uint8_t>& data) {
  std::vector<uint8_t> compressed = codec.Compress(data);
  std::vector<uint8_t> out;
  for (auto _ : state) {
    codec.Decompress(compressed, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}

void BM_Lz77CompressBsBitmap(benchmark::State& state) {
  RunCompress(state, *CodecByName("lz77"), BsBitmapPayload());
}
BENCHMARK(BM_Lz77CompressBsBitmap);

void BM_Lz77DecompressBsBitmap(benchmark::State& state) {
  RunDecompress(state, *CodecByName("lz77"), BsBitmapPayload());
}
BENCHMARK(BM_Lz77DecompressBsBitmap);

void BM_Lz77CompressSparse(benchmark::State& state) {
  RunCompress(state, *CodecByName("lz77"), SparsePayload());
}
BENCHMARK(BM_Lz77CompressSparse);

void BM_RleCompressSparse(benchmark::State& state) {
  RunCompress(state, *CodecByName("rle"), SparsePayload());
}
BENCHMARK(BM_RleCompressSparse);

void BM_RleDecompressSparse(benchmark::State& state) {
  RunDecompress(state, *CodecByName("rle"), SparsePayload());
}
BENCHMARK(BM_RleDecompressSparse);

}  // namespace
