// Figure 9: space-time tradeoff of range-encoded vs equality-encoded
// indexes for C in {25, 100, 1000}.  One point per component count n,
// using the most space-efficient decomposition at each n (the class the
// paper's Section 7 shows approximates the full design space well).
//
// Expected shape: the range-encoded curve dominates the equality-encoded
// curve (lower time at comparable or smaller space) at almost every point.

#include <cstdio>

#include "core/advisor.h"
#include "core/cost_model.h"

using namespace bix;

int main() {
  std::printf("Figure 9: range vs equality encoding, space-optimal "
              "decompositions per component count\n");
  for (uint32_t c : {25u, 100u, 1000u}) {
    std::printf("\nC = %u\n", c);
    std::printf("  %3s %-22s | %9s %9s | %9s %9s\n", "n", "base",
                "space(R)", "time(R)", "space(E)", "time(E)");
    for (int n = 1; n <= MaxComponents(c); ++n) {
      BaseSequence base = BestSpaceOptimalBase(c, n);
      std::printf("  %3d %-22s | %9lld %9.3f | %9lld %9.3f\n", n,
                  base.ToString().c_str(),
                  static_cast<long long>(SpaceInBitmaps(base, Encoding::kRange)),
                  AnalyticTime(base, Encoding::kRange),
                  static_cast<long long>(
                      SpaceInBitmaps(base, Encoding::kEquality)),
                  AnalyticTime(base, Encoding::kEquality));
    }
    // Dominance summary across the two frontiers.
    int dominated = 0;
    int total = 0;
    for (int n = 1; n <= MaxComponents(c); ++n) {
      BaseSequence base = BestSpaceOptimalBase(c, n);
      double te = AnalyticTime(base, Encoding::kEquality);
      int64_t se = SpaceInBitmaps(base, Encoding::kEquality);
      ++total;
      // Is some range-encoded point at least as good in both dimensions?
      for (int m = 1; m <= MaxComponents(c); ++m) {
        BaseSequence rb = BestSpaceOptimalBase(c, m);
        if (SpaceInBitmaps(rb, Encoding::kRange) <= se &&
            AnalyticTime(rb, Encoding::kRange) <= te + 1e-9) {
          ++dominated;
          break;
        }
      }
    }
    std::printf("  => %d/%d equality-encoded points dominated by a "
                "range-encoded point\n", dominated, total);
  }
  return 0;
}
