// Ablation beyond the paper: how the best index design and the preferred
// encoding move as the workload's operator mix shifts from pure key
// lookups (equality) to pure interval filters (range).  The paper fixes a
// uniform mix (range fraction 2/3); DSS reporting workloads are often far
// more range-heavy and OLTP-ish drill-downs more equality-heavy.
//
// For each mix, searches all tight designs under a fixed space budget and
// reports the winning encoding and base.
//
// Expected shape: equality encoding wins the equality-heavy end (1 scan
// per component), range encoding wins from moderate mixes onward; the
// winning decomposition stays 2-component near the knee budget.

#include <cstdio>
#include <limits>

#include "core/advisor.h"
#include "core/cost_model.h"

using namespace bix;

namespace {

struct Best {
  BaseSequence base;
  Encoding encoding = Encoding::kRange;
  double time = std::numeric_limits<double>::infinity();
};

Best SearchBest(uint32_t c, int64_t budget, const WorkloadMix& mix) {
  Best best;
  EnumerateTightBases(c, 0, [&](const BaseSequence& base) {
    for (Encoding enc : {Encoding::kRange, Encoding::kEquality}) {
      if (SpaceInBitmaps(base, enc) > budget) continue;
      double t = AnalyticTimeForMix(base, enc, mix);
      if (t < best.time) {
        best = Best{base, enc, t};
      }
    }
  });
  return best;
}

}  // namespace

int main() {
  const uint32_t c = 1000;
  const int64_t budget = 64;  // around the uniform-mix knee's footprint

  std::printf("Workload-mix ablation: best design within %lld bitmaps, "
              "C = %u\n\n", static_cast<long long>(budget), c);
  std::printf("%14s | %-10s %-22s %10s\n", "range frac", "encoding", "base",
              "scans");
  for (double f : {0.0, 0.1, 0.25, 0.4, 0.5, 2.0 / 3.0, 0.8, 0.9, 1.0}) {
    Best best = SearchBest(c, budget, WorkloadMix{f});
    std::printf("%14.2f | %-10s %-22s %10.3f\n", f,
                std::string(ToString(best.encoding)).c_str(),
                best.base.ToString().c_str(), best.time);
  }
  std::printf("\nshape check: equality encoding wins the key-lookup end; "
              "range encoding takes over as range predicates dominate "
              "(the paper's uniform mix sits at 0.67).\n");
  return 0;
}
