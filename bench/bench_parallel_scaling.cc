// Wall-clock scaling of the segmented parallel evaluation engine
// (exec/segmented_eval.h) on a large range query, versus the sequential
// evaluator.  Engineering companion to the paper's CPU-time discussion: the
// engine reassociates the same word operations, so scans/ops stay exactly
// the closed-form counts while the wall clock divides across threads.
//
// Every parallel result is verified bit-identical to the sequential one and
// every EvalStats delta equal — the bench aborts on any divergence, so a
// passing run doubles as a large-N correctness check.  Speedups are
// hardware-dependent (a single-core host reports ~1x throughout); the
// verification must hold everywhere.
//
// Usage: bench_parallel_scaling [--smoke] [OUT.json]
//   --smoke   1M rows instead of 10M (registered with ctest)
//   OUT.json  result rows in the shared BENCH json schema
//             (default BENCH_parallel_scaling.json)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/advisor.h"
#include "core/bitmap_index.h"
#include "core/eval.h"
#include "exec/segmented_eval.h"
#include "workload/generators.h"

using namespace bix;

namespace {

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

template <typename Fn>
double TimeMs(const Fn& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  return 1e3 * std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_parallel_scaling.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  const size_t n = smoke ? 1000000 : 10000000;
  const int reps = smoke ? 3 : 5;
  const uint32_t c = 1000;
  const uint32_t segment_bits = 16;  // 64 Kbit (8 KB) segments
  const BaseSequence base = KneeBase(c);
  const CompareOp op = CompareOp::kLe;
  const int64_t v = c / 2;

  std::printf("Parallel scaling: range query A <= %lld, knee index %s, "
              "C = %u, N = %zu%s\n\n",
              static_cast<long long>(v), base.ToString().c_str(), c, n,
              smoke ? "  [smoke]" : "");

  std::vector<uint32_t> column = GenerateUniform(n, c, 7);
  BitmapIndex index = BitmapIndex::Build(column, c, base, Encoding::kRange);

  // Sequential baseline: full-length passes through core/eval.cc.
  Bitvector expected;
  EvalStats seq_stats;
  std::vector<double> seq_samples;
  for (int r = 0; r < reps; ++r) {
    EvalStats stats;
    Bitvector got;
    seq_samples.push_back(TimeMs([&] {
      got = EvaluatePredicate(index, EvalAlgorithm::kRangeEvalOpt, op, v,
                              &stats);
    }));
    expected = std::move(got);
    seq_stats = stats;
  }
  const double seq_ms = MedianMs(seq_samples);

  std::printf("%10s | %12s %10s | %s\n", "threads", "ms/query", "speedup",
              "verified");
  std::printf("%10s | %12.2f %10s | %s\n", "seq", seq_ms, "1.00x",
              "baseline");

  bench::BenchJsonWriter json;
  std::vector<bench::BenchParam> base_params = {
      {"rows", n}, {"cardinality", static_cast<int64_t>(c)},
      {"segment_bits", static_cast<int64_t>(segment_bits)},
      {"smoke", static_cast<int64_t>(smoke ? 1 : 0)}};
  auto params_with_threads = [&](int threads) {
    std::vector<bench::BenchParam> p = base_params;
    p.emplace_back("threads", static_cast<int64_t>(threads));
    return p;
  };
  json.Add("parallel_scaling", params_with_threads(0), "latency_ms", seq_ms,
           "ms");

  for (int threads : {1, 2, 4, 8}) {
    ExecOptions options;
    options.num_threads = threads;
    options.segment_bits = segment_bits;
    std::vector<double> samples;
    bool identical = true;
    bool stats_equal = true;
    for (int r = 0; r < reps; ++r) {
      EvalStats stats;
      Bitvector got;
      samples.push_back(TimeMs([&] {
        got = EvaluatePredicate(index, EvalAlgorithm::kRangeEvalOpt, op, v,
                                options, &stats);
      }));
      identical = identical && got == expected;
      stats_equal = stats_equal && stats == seq_stats;
    }
    const double ms = MedianMs(samples);
    const double speedup = ms > 0 ? seq_ms / ms : 0;
    std::printf("%10d | %12.2f %9.2fx | %s\n", threads, ms, speedup,
                identical && stats_equal
                    ? "bit-identical, stats equal"
                    : (identical ? "STATS DRIFT" : "RESULT MISMATCH"));
    if (!identical || !stats_equal) {
      std::fprintf(stderr, "bench_parallel_scaling: verification FAILED at "
                           "%d threads\n", threads);
      return 1;
    }
    json.Add("parallel_scaling", params_with_threads(threads), "latency_ms",
             ms, "ms");
    json.Add("parallel_scaling", params_with_threads(threads), "speedup",
             speedup, "x");
  }

  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "bench_parallel_scaling: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("\n%zu rows -> %s\n", json.size(), out_path.c_str());
  std::printf("shape check: speedup approaches the hardware thread count on "
              "multi-core hosts (1x on one core); verification holds "
              "everywhere.\n");
  return 0;
}
