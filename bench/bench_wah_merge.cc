// Micro-benchmark for the k-ary WAH merge strategies (bitmap/wah_kernels.cc):
// the run-event heap, the original linear per-group scan, the always-dense
// fold, and the adaptive merge that starts on the heap and falls back to the
// dense accumulator on low-compressibility inputs.
//
// The grid sweeps bit density (sparse fills -> uniform noise) against fan-in
// k in {2, 4, 8, 16, 32}, measuring OrOfMany and the counting form for each
// strategy.  Expected shape: the heap wins wherever fills dominate and its
// advantage grows with k (O(log k) per run event vs O(k) per group step);
// on uniform noise the heap degenerates and the adaptive strategy's dense
// fallback takes over, tracking the dense fold.  Results are checksummed
// across strategies — a divergence fails the run.
//
// Usage: bench_wah_merge [--smoke] [OUT.json]
//   --smoke    smaller bitmaps and fewer reps (registered as a ctest smoke)
//   OUT.json   also write every measurement as bench_json.h rows

#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bitmap/bitvector.h"
#include "bitmap/wah_bitvector.h"
#include "bitmap/wah_kernels.h"

using namespace bix;

namespace {

Bitvector RandomDense(size_t bits, double density, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0, 1);
  Bitvector out(bits);
  for (size_t i = 0; i < bits; ++i) {
    if (uni(rng) < density) out.Set(i);
  }
  return out;
}

Bitvector ClusteredDense(size_t bits, double density, size_t run,
                         uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0, 1);
  Bitvector out(bits);
  for (size_t i = 0; i < bits; i += run) {
    if (uni(rng) < density) {
      for (size_t k = i; k < std::min(i + run, bits); ++k) out.Set(k);
    }
  }
  return out;
}

struct MergeSample {
  double merge_us = 0;  // OrOfManyAdaptive — the form the engine consumes
  double count_us = 0;  // CountOrOfMany
  size_t checksum = 0;  // popcount of the union (strategy-independent)
};

MergeSample Measure(const std::vector<WahBitvector>& operands, int reps) {
  MergeSample s;
  // The parity checksum is computed once, outside the timed loops, so the
  // timings cover the merge itself and not a popcount over the result.
  s.checksum = OrOfMany(operands).Count();
  // Both loops keep the minimum across reps: min-of-reps is robust against
  // scheduler and turbo noise at the low rep counts the smoke lane uses.
  {
    size_t guard = 0;
    for (int i = 0; i < reps; ++i) {
      auto start = std::chrono::steady_clock::now();
      // Time the merge as the auto engine consumes it: a fallback result
      // stays dense (the caller folds it onward) instead of paying a
      // re-compression the engine would never ask for.
      WahMergeOutput out = OrOfManyAdaptive(operands);
      const double us = 1e6 * std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - start)
                                  .count();
      guard += out.dense_fallback ? out.dense.words().size()
                                  : out.wah.code_words().size();
      if (i == 0 || us < s.merge_us) s.merge_us = us;
    }
    if (guard == 0) s.checksum = size_t(-1);  // merge produced nothing
  }
  {
    size_t guard = 0;
    for (int i = 0; i < reps; ++i) {
      auto start = std::chrono::steady_clock::now();
      guard = CountOrOfMany(operands);
      const double us = 1e6 * std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - start)
                                  .count();
      if (i == 0 || us < s.count_us) s.count_us = us;
    }
    if (guard != s.checksum) s.checksum = size_t(-1);  // forces the FAIL path
  }
  return s;
}

struct Shape {
  const char* name;
  double density;
  size_t cluster_run;  // 0 = uniform
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  bench::BenchJsonWriter json;

  const size_t bits = smoke ? (1 << 19) : (1 << 22);
  const int reps = smoke ? 3 : 10;
  const Shape shapes[] = {
      {"sparse 0.01%", 0.0001, 0},
      {"sparse 0.1%", 0.001, 0},
      {"clustered 10% r=2048", 0.1, 2048},
      {"noise 50%", 0.5, 0},
  };
  const size_t fanins[] = {2, 4, 8, 16, 32};
  const WahMergeStrategy strategies[] = {
      WahMergeStrategy::kLegacy, WahMergeStrategy::kHeap,
      WahMergeStrategy::kAdaptive, WahMergeStrategy::kDense};

  std::printf("k-ary WAH OR merge, %zu-bit operands, us/merge%s\n\n", bits,
              smoke ? "  [smoke]" : "");
  std::printf("%-22s %4s | %10s %10s %10s %10s | %10s\n", "shape", "k",
              "legacy", "heap", "adaptive", "dense", "adapt/leg");

  for (const Shape& shape : shapes) {
    for (size_t k : fanins) {
      std::vector<WahBitvector> operands;
      operands.reserve(k);
      for (size_t i = 0; i < k; ++i) {
        const uint64_t seed = 1000 * k + i;
        Bitvector d = shape.cluster_run == 0
                          ? RandomDense(bits, shape.density, seed)
                          : ClusteredDense(bits, shape.density,
                                           shape.cluster_run, seed);
        operands.push_back(WahBitvector::FromBitvector(d));
      }

      double us[4] = {};
      double count_us[4] = {};
      size_t checksum = 0;
      for (int s = 0; s < 4; ++s) {
        SetWahMergeStrategy(strategies[s]);
        MergeSample sample = Measure(operands, reps);
        us[s] = sample.merge_us;
        count_us[s] = sample.count_us;
        if (s == 0) {
          checksum = sample.checksum;
        } else if (sample.checksum != checksum) {
          std::printf("FAIL: %s disagrees on %s k=%zu\n",
                      ToString(strategies[s]), shape.name, k);
          return 1;
        }
      }
      SetWahMergeStrategy(WahMergeStrategy::kAdaptive);

      std::printf("%-22s %4zu | %10.1f %10.1f %10.1f %10.1f | %9.2fx\n",
                  shape.name, k, us[0], us[1], us[2], us[3],
                  us[2] > 0 ? us[0] / us[2] : 0.0);
      for (int s = 0; s < 4; ++s) {
        std::vector<bench::BenchParam> params = {
            {"shape", shape.name},
            {"density", shape.density},
            {"bits", static_cast<int64_t>(bits)},
            {"k", static_cast<int64_t>(k)},
            {"strategy", ToString(strategies[s])}};
        json.Add("wah_merge", params, "merge_us", us[s], "us");
        json.Add("wah_merge", params, "count_us", count_us[s], "us");
      }
    }
  }

  std::printf(
      "\nshape check: the heap dominates while fills dominate and scales "
      "with k;\non noise the adaptive merge falls back to the dense fold "
      "and tracks it.\n");
  if (!json_path.empty()) {
    if (!json.WriteFile(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %zu rows -> %s\n", json.size(), json_path.c_str());
  }
  return 0;
}
