// Table 2: effectiveness of the heuristic (TimeOptHeur) at choosing the
// time-optimal index under a space constraint, versus the exhaustive
// TimeOptAlg, sweeping every feasible budget M for several attribute
// cardinalities.  Also prints the paper's Fig. 13-style case studies of
// the component-count bounds [n0, n'] that TimeOptAlg derives.
//
// Expected shape: heuristic optimal >= ~97% of the time; small worst-case
// difference in expected scans.

#include <algorithm>
#include <cstdio>

#include "core/advisor.h"
#include "core/cost_model.h"

using namespace bix;

int main() {
  std::printf("Table 2: heuristic vs optimal time-efficient index under "
              "space constraint\n\n");
  std::printf("%12s %12s %14s %22s\n", "cardinality", "budgets", "% optimal",
              "max diff (exp. scans)");
  for (uint32_t c : {100u, 250u, 500u, 1000u, 2000u}) {
    int total = 0;
    int optimal = 0;
    double max_diff = 0;
    for (int64_t m = MaxComponents(c); m <= static_cast<int64_t>(c); ++m) {
      ConstrainedResult exact = TimeOptAlg(c, m);
      ConstrainedResult heur = TimeOptHeur(c, m);
      if (!exact.feasible) continue;
      ++total;
      double diff = heur.design.time - exact.design.time;
      if (diff <= 1e-9) {
        ++optimal;
      } else {
        max_diff = std::max(max_diff, diff);
      }
    }
    std::printf("%12u %12d %13.1f%% %22.4f\n", c, total,
                100.0 * optimal / total, max_diff);
  }

  std::printf("\nFigure 13 case studies (bounds on the component count of "
              "the constrained solution), C = 1000:\n");
  for (int64_t m : {int64_t{40}, int64_t{70}, int64_t{130}, int64_t{260},
                    int64_t{600}}) {
    // n0 = least n with space-optimal space <= M; n' = least n >= n0 with
    // time-optimal space <= M.
    int n0 = 0, np = 0;
    for (int n = 1; n <= MaxComponents(1000); ++n) {
      if (n0 == 0 && SpaceOptimalBitmaps(1000, n) <= m) n0 = n;
      if (n0 != 0 && np == 0 &&
          SpaceInBitmaps(TimeOptimalBase(1000, n), Encoding::kRange) <= m) {
        np = n;
      }
    }
    ConstrainedResult exact = TimeOptAlg(1000, m);
    std::printf("  M=%-5lld n0=%d n'=%d  ->  optimal %s "
                "(space=%lld, time=%.3f, n=%d)\n",
                static_cast<long long>(m), n0, np,
                exact.design.base.ToString().c_str(),
                static_cast<long long>(exact.design.space), exact.design.time,
                exact.design.base.num_components());
  }
  return 0;
}
