// Machine-readable benchmark output shared by every harness that emits it.
//
// One result is one flat row
//
//   {"bench": "...", "params": {...}, "metric": "...", "value": n,
//    "unit": "..."}
//
// and a result file is a JSON array of rows.  The schema is deliberately
// denormalized — one row per (benchmark, parameter point, metric) — so
// downstream tooling can concatenate, filter, and plot files from different
// harnesses without per-bench parsing.

#ifndef BIX_BENCH_BENCH_JSON_H_
#define BIX_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace bix::bench {

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string JsonNumber(double v) {
  char buf[40];
  // %.17g round-trips doubles; trim to something diff-friendly for the
  // common small-integer case.
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// One key in a row's "params" object, value pre-rendered as JSON.
struct BenchParam {
  std::string key;
  std::string value_json;

  BenchParam(std::string k, int64_t v)
      : key(std::move(k)), value_json(std::to_string(v)) {}
  BenchParam(std::string k, int v)
      : key(std::move(k)), value_json(std::to_string(v)) {}
  BenchParam(std::string k, size_t v)
      : key(std::move(k)), value_json(std::to_string(v)) {}
  BenchParam(std::string k, double v)
      : key(std::move(k)), value_json(JsonNumber(v)) {}
  BenchParam(std::string k, const std::string& v)
      : key(std::move(k)), value_json("\"" + JsonEscape(v) + "\"") {}
  BenchParam(std::string k, const char* v)
      : key(std::move(k)), value_json("\"" + JsonEscape(v) + "\"") {}
};

/// Accumulates rows, then writes them as one JSON array.
class BenchJsonWriter {
 public:
  void Add(const std::string& bench, const std::vector<BenchParam>& params,
           const std::string& metric, double value, const std::string& unit) {
    std::string row = "{\"bench\":\"" + JsonEscape(bench) + "\",\"params\":{";
    for (size_t i = 0; i < params.size(); ++i) {
      if (i > 0) row += ",";
      row += "\"" + JsonEscape(params[i].key) + "\":" + params[i].value_json;
    }
    row += "},\"metric\":\"" + JsonEscape(metric) + "\",\"value\":" +
           JsonNumber(value) + ",\"unit\":\"" + JsonEscape(unit) + "\"}";
    rows_.push_back(std::move(row));
  }

  size_t size() const { return rows_.size(); }

  std::string ToJson() const {
    std::string out = "[\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      out += "  " + rows_[i] + (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    out += "]\n";
    return out;
  }

  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::string json = ToJson();
    size_t written = std::fwrite(json.data(), 1, json.size(), f);
    return std::fclose(f) == 0 && written == json.size();
  }

 private:
  std::vector<std::string> rows_;
};

}  // namespace bix::bench

#endif  // BIX_BENCH_BENCH_JSON_H_
