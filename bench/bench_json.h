// Machine-readable benchmark output shared by every harness that emits it.
//
// One result is one flat row
//
//   {"bench": "...", "params": {...}, "metric": "...", "value": n,
//    "unit": "..."}
//
// and a result file is a JSON array of rows.  The schema is deliberately
// denormalized — one row per (benchmark, parameter point, metric) — so
// downstream tooling can concatenate, filter, and plot files from different
// harnesses without per-bench parsing.
//
// The first row of every file written here is a synthetic "_meta" row
// carrying run metadata (git sha, UTC timestamp, hostname, thread count,
// compiler) in its params, so a baseline is self-describing and benchdiff
// can refuse a cross-machine comparison instead of silently gating on it.
// Consumers that iterate rows can skip it by its reserved bench name.

#ifndef BIX_BENCH_BENCH_JSON_H_
#define BIX_BENCH_BENCH_JSON_H_

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace bix::bench {

/// Reserved bench name of the run-metadata row.
inline constexpr const char* kMetaBenchName = "_meta";

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string JsonNumber(double v) {
  char buf[40];
  // %.17g round-trips doubles; trim to something diff-friendly for the
  // common small-integer case.
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// One key in a row's "params" object, value pre-rendered as JSON.
struct BenchParam {
  std::string key;
  std::string value_json;

  BenchParam(std::string k, int64_t v)
      : key(std::move(k)), value_json(std::to_string(v)) {}
  BenchParam(std::string k, int v)
      : key(std::move(k)), value_json(std::to_string(v)) {}
  BenchParam(std::string k, size_t v)
      : key(std::move(k)), value_json(std::to_string(v)) {}
  BenchParam(std::string k, double v)
      : key(std::move(k)), value_json(JsonNumber(v)) {}
  BenchParam(std::string k, const std::string& v)
      : key(std::move(k)), value_json("\"" + JsonEscape(v) + "\"") {}
  BenchParam(std::string k, const char* v)
      : key(std::move(k)), value_json("\"" + JsonEscape(v) + "\"") {}
};

/// Run metadata for the "_meta" row.  All fields degrade to "unknown"
/// rather than failing — metadata must never break a benchmark run.
struct RunMeta {
  std::string git_sha;
  std::string timestamp_utc;  // ISO-8601, e.g. "2026-08-07T12:34:56Z"
  std::string hostname;
  int threads = 0;
  std::string compiler;
};

inline RunMeta CollectRunMeta() {
  RunMeta meta;
  // Prefer an explicitly exported sha (scripts/check.sh sets BIX_GIT_SHA so
  // benches need not run inside the repo); fall back to asking git.
  const char* env_sha = std::getenv("BIX_GIT_SHA");
  if (env_sha != nullptr && env_sha[0] != '\0') {
    meta.git_sha = env_sha;
  } else {
    std::FILE* p = popen("git rev-parse --short=12 HEAD 2>/dev/null", "r");
    if (p != nullptr) {
      char buf[64] = {0};
      if (std::fgets(buf, sizeof(buf), p) != nullptr) {
        std::string sha(buf);
        while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
          sha.pop_back();
        }
        meta.git_sha = sha;
      }
      pclose(p);
    }
  }
  if (meta.git_sha.empty()) meta.git_sha = "unknown";

  std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  if (gmtime_r(&now, &tm_utc) != nullptr) {
    char buf[32];
    if (std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc) > 0) {
      meta.timestamp_utc = buf;
    }
  }
  if (meta.timestamp_utc.empty()) meta.timestamp_utc = "unknown";

  char host[256] = {0};
  if (gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
    meta.hostname = host;
  } else {
    meta.hostname = "unknown";
  }

  meta.threads = static_cast<int>(std::thread::hardware_concurrency());

#if defined(__VERSION__)
  meta.compiler = __VERSION__;
#else
  meta.compiler = "unknown";
#endif
  return meta;
}

/// Accumulates rows, then writes them as one JSON array.
class BenchJsonWriter {
 public:
  /// Records which evaluation engine produced this run's numbers in the
  /// "_meta" row.  Engines have different performance envelopes, so
  /// benchdiff refuses to fold a wah baseline into a plain fresh run (or
  /// vice versa) the same way it refuses cross-host comparisons.
  void SetEngine(std::string engine) { engine_ = std::move(engine); }

  void Add(const std::string& bench, const std::vector<BenchParam>& params,
           const std::string& metric, double value, const std::string& unit) {
    std::string row = "{\"bench\":\"" + JsonEscape(bench) + "\",\"params\":{";
    for (size_t i = 0; i < params.size(); ++i) {
      if (i > 0) row += ",";
      row += "\"" + JsonEscape(params[i].key) + "\":" + params[i].value_json;
    }
    row += "},\"metric\":\"" + JsonEscape(metric) + "\",\"value\":" +
           JsonNumber(value) + ",\"unit\":\"" + JsonEscape(unit) + "\"}";
    rows_.push_back(std::move(row));
  }

  size_t size() const { return rows_.size(); }

  std::string ToJson() const {
    // The metadata row leads the array so readers see the run's identity
    // before any result, and diffing two files diffs metadata first.
    const RunMeta meta = CollectRunMeta();
    std::string meta_row =
        std::string("{\"bench\":\"") + kMetaBenchName + "\",\"params\":{" +
        "\"git_sha\":\"" + JsonEscape(meta.git_sha) + "\"," +
        "\"timestamp_utc\":\"" + JsonEscape(meta.timestamp_utc) + "\"," +
        "\"hostname\":\"" + JsonEscape(meta.hostname) + "\"," +
        "\"threads\":" + std::to_string(meta.threads) + "," +
        "\"compiler\":\"" + JsonEscape(meta.compiler) + "\"" +
        (engine_.empty()
             ? std::string()
             : ",\"engine\":\"" + JsonEscape(engine_) + "\"") +
        "},\"metric\":\"run\",\"value\":0,\"unit\":\"\"}";
    std::string out = "[\n  " + meta_row + (rows_.empty() ? "\n" : ",\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      out += "  " + rows_[i] + (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    out += "]\n";
    return out;
  }

  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::string json = ToJson();
    size_t written = std::fwrite(json.data(), 1, json.size(), f);
    return std::fclose(f) == 0 && written == json.size();
  }

 private:
  std::vector<std::string> rows_;
  std::string engine_;
};

}  // namespace bix::bench

#endif  // BIX_BENCH_BENCH_JSON_H_
