// Observability overhead benchmark.
//
// The obs layer's contract is that *disabled* instrumentation is free: the
// hot path pays one relaxed atomic load per potential event.  This harness
// measures (1) that check and the always-on metric primitives directly,
// (2) the end-to-end effect of the disabled check on a bitvector AND kernel
// instrumented the same way core/eval.cc is — the acceptance criterion is
// overhead within noise (< 2%) — and (3) evaluation latency with tracing
// off vs on, which prices the *enabled* path (a diagnosis tool, not free).
//
// Results print as text and are written to BENCH_obs.json (first argv
// overrides the path) in the shared one-row-per-metric schema; see
// bench_json.h.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bitmap/bitvector.h"
#include "core/advisor.h"
#include "core/bitmap_index.h"
#include "core/eval.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/generators.h"

using namespace bix;

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Bitvector RandomBitvector(size_t bits, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Bitvector bv(bits);
  for (size_t i = 0; i < bits; ++i) {
    if (rng() & 1) bv.Set(i);
  }
  return bv;
}

/// Median over `reps` timed runs of `fn` (ns per call of `fn`).
template <typename Fn>
double MedianNs(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    int64_t t0 = NowNs();
    fn();
    samples.push_back(static_cast<double>(NowNs() - t0));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// Defeats dead-code elimination without a memory barrier per iteration.
volatile int64_t g_sink = 0;

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_obs.json";
  bench::BenchJsonWriter json;
  obs::Tracer::Global().Disable();

  std::printf("obs overhead benchmark\n\n");

  // --- primitive costs -----------------------------------------------------
  {
    constexpr int64_t kCalls = 50'000'000;
    double ns = MedianNs(5, [] {
      int64_t acc = 0;
      for (int64_t i = 0; i < kCalls; ++i) {
        acc += obs::Tracer::enabled() ? 1 : 0;
      }
      g_sink = acc;
    });
    double per_call = ns / static_cast<double>(kCalls);
    std::printf("  Tracer::enabled() disabled check   %8.3f ns/call\n",
                per_call);
    json.Add("obs_primitives", {{"calls", kCalls}}, "tracer_enabled_check",
             per_call, "ns/op");
  }
  {
    constexpr int64_t kCalls = 10'000'000;
    auto& counter = obs::MetricsRegistry::Global().GetCounter("bench.counter");
    double ns = MedianNs(5, [&] {
      for (int64_t i = 0; i < kCalls; ++i) counter.Increment();
    });
    double per_call = ns / static_cast<double>(kCalls);
    std::printf("  Counter::Increment                 %8.3f ns/op\n", per_call);
    json.Add("obs_primitives", {{"calls", kCalls}}, "counter_increment",
             per_call, "ns/op");
  }
  {
    constexpr int64_t kCalls = 10'000'000;
    auto& hist = obs::MetricsRegistry::Global().GetHistogram("bench.hist");
    double ns = MedianNs(5, [&] {
      for (int64_t i = 0; i < kCalls; ++i) hist.Observe(i & 0xFFFF);
    });
    double per_call = ns / static_cast<double>(kCalls);
    std::printf("  Histogram::Observe                 %8.3f ns/op\n", per_call);
    json.Add("obs_primitives", {{"calls", kCalls}}, "histogram_observe",
             per_call, "ns/op");
  }

  // --- disabled-check overhead on a bitvector kernel -----------------------
  // The same shape as core/eval.cc's instrumentation: one enabled() check
  // guarding an event record per bitwise operation.  Tracing stays disabled;
  // the delta between the two loops is the instrumentation tax.
  {
    constexpr size_t kBits = 1 << 17;
    constexpr int kOpsPerRun = 2000;
    const Bitvector a = RandomBitvector(kBits, 1);
    const Bitvector b = RandomBitvector(kBits, 2);

    auto plain = [&] {
      Bitvector c = a;
      for (int i = 0; i < kOpsPerRun; ++i) c.AndWith(b);
      g_sink = static_cast<int64_t>(c.Count());
    };
    auto instrumented = [&] {
      Bitvector c = a;
      for (int i = 0; i < kOpsPerRun; ++i) {
        c.AndWith(b);
        if (obs::Tracer::enabled()) obs::RecordInstant("op", "AND");
      }
      g_sink = static_cast<int64_t>(c.Count());
    };
    plain();
    instrumented();  // warm up

    // Interleave many short runs so frequency drift hits both variants.
    std::vector<double> plain_ns, inst_ns;
    for (int r = 0; r < 31; ++r) {
      int64_t t0 = NowNs();
      plain();
      int64_t t1 = NowNs();
      instrumented();
      int64_t t2 = NowNs();
      plain_ns.push_back(static_cast<double>(t1 - t0));
      inst_ns.push_back(static_cast<double>(t2 - t1));
    }
    std::sort(plain_ns.begin(), plain_ns.end());
    std::sort(inst_ns.begin(), inst_ns.end());
    double p = plain_ns[plain_ns.size() / 2];
    double q = inst_ns[inst_ns.size() / 2];
    double overhead_pct = (q - p) / p * 100.0;
    std::printf(
        "  AND kernel (%d x %zu bits)        plain %.0f ns, "
        "instrumented %.0f ns, overhead %+.2f%%\n",
        kOpsPerRun, kBits, p, q, overhead_pct);
    json.Add("obs_disabled_overhead",
             {{"bits", kBits}, {"ops", kOpsPerRun}, {"kernel", "and"}},
             "overhead", overhead_pct, "percent");
    json.Add("obs_disabled_overhead",
             {{"bits", kBits}, {"ops", kOpsPerRun}, {"kernel", "and"}},
             "plain_time", p / kOpsPerRun, "ns/op");
    json.Add("obs_disabled_overhead",
             {{"bits", kBits}, {"ops", kOpsPerRun}, {"kernel", "and"}},
             "instrumented_time", q / kOpsPerRun, "ns/op");
  }

  // --- end-to-end evaluation latency, tracing off vs on --------------------
  {
    constexpr uint32_t kCardinality = 1000;
    constexpr size_t kRecords = 100'000;
    constexpr int kQueries = 200;
    std::vector<uint32_t> values =
        GenerateUniform(kRecords, kCardinality, 17);
    BitmapIndex index = BitmapIndex::Build(values, kCardinality,
                                           KneeBase(kCardinality),
                                           Encoding::kRange);
    auto run_queries = [&] {
      for (int i = 0; i < kQueries; ++i) {
        Bitvector found = index.Evaluate(
            CompareOp::kLe, i % static_cast<int>(kCardinality));
        g_sink = static_cast<int64_t>(found.Count());
      }
    };
    run_queries();  // warm up

    double off_ns = MedianNs(9, run_queries) / kQueries;
    obs::Tracer::Global().Enable();
    double on_ns = MedianNs(9, [&] {
      obs::Tracer::Global().Clear();
      run_queries();
    }) / kQueries;
    size_t events = obs::Tracer::Global().size();
    obs::Tracer::Global().Disable();

    std::printf(
        "  eval latency (N=%zu, C=%u)     tracing off %.0f ns/query, "
        "on %.0f ns/query (%zu events/run)\n",
        kRecords, kCardinality, off_ns, on_ns, events);
    json.Add("obs_eval_latency",
             {{"records", kRecords}, {"cardinality", static_cast<int64_t>(kCardinality)},
              {"tracing", "off"}},
             "latency", off_ns, "ns/query");
    json.Add("obs_eval_latency",
             {{"records", kRecords}, {"cardinality", static_cast<int64_t>(kCardinality)},
              {"tracing", "on"}},
             "latency", on_ns, "ns/query");
  }

  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %zu rows to %s\n", json.size(), out_path.c_str());
  return 0;
}
